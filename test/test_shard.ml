(* Sharded-serving building blocks: the consistent-hash ring, the router's
   LRU result cache, the per-worker handle table, graph patching, and the
   incremental re-solve's equivalence with the from-scratch solve.

   The process-level pieces (router forking workers, crash transparency)
   live in test/shard/ — Router.serve forks, which OCaml 5 forbids after a
   domain spawn, so they cannot share this runner with the pool suites. *)

module Chash = Lcm_support.Chash
module Prng = Lcm_support.Prng
module Cache = Lcm_shard.Cache
module Handles = Lcm_server.Handles
module Cfg = Lcm_cfg.Cfg
module Cfg_text = Lcm_cfg.Cfg_text
module Patch = Lcm_cfg.Patch
module Gencfg = Lcm_eval.Gencfg
module Lcm_edge = Lcm_core.Lcm_edge
module Transform = Lcm_core.Transform

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- consistent hashing ---- *)

let keys n = List.init n (fun i -> Printf.sprintf "key-%d" i)

let chash_deterministic () =
  let r1 = Chash.create ~nodes:4 ~replicas:32 in
  let r2 = Chash.create ~nodes:4 ~replicas:32 in
  List.iter
    (fun k -> checki ("owner of " ^ k) (Chash.lookup r1 k) (Chash.lookup r2 k))
    (keys 200)

let chash_in_range () =
  let r = Chash.create ~nodes:3 ~replicas:16 in
  List.iter
    (fun k ->
      let n = Chash.lookup r k in
      checkb "owner in range" true (n >= 0 && n < 3))
    (keys 500)

let chash_covers_all_nodes () =
  (* With enough virtual nodes, every worker owns a nonempty arc. *)
  let nodes = 4 in
  let r = Chash.create ~nodes ~replicas:32 in
  let seen = Array.make nodes false in
  List.iter (fun k -> seen.(Chash.lookup r k) <- true) (keys 2000);
  Array.iteri (fun i s -> checkb (Printf.sprintf "node %d owns keys" i) true s) seen

let chash_stability_under_death () =
  (* When node d dies, keys it did not own keep their owner; keys it did
     own move to a live node — the membership change is local. *)
  let nodes = 4 in
  let r = Chash.create ~nodes ~replicas:32 in
  let d = 2 in
  let alive n = n <> d in
  List.iter
    (fun k ->
      let before = Chash.lookup r k in
      match Chash.lookup_alive r ~alive k with
      | None -> Alcotest.fail "no live owner with 3/4 nodes up"
      | Some after ->
        checkb "live owner" true (alive after);
        if before <> d then checki ("stable owner of " ^ k) before after)
    (keys 500)

let chash_lookup_alive_none () =
  let r = Chash.create ~nodes:2 ~replicas:8 in
  checkb "no live node -> None" true (Chash.lookup_alive r ~alive:(fun _ -> false) "k" = None)

let chash_successor () =
  let r = Chash.create ~nodes:3 ~replicas:16 in
  (match Chash.successor r ~alive:(fun _ -> true) 1 with
  | Some s -> checkb "successor is a different node" true (s <> 1 && s >= 0 && s < 3)
  | None -> Alcotest.fail "successor exists among 3 live nodes");
  checkb "no successor when alone" true
    (Chash.successor r ~alive:(fun n -> n = 1) 1 = None)

(* ---- LRU cache ---- *)

let cache_basic () =
  let c = Cache.create ~capacity:2 in
  checki "evictions" 0 (Cache.add c "a" 1);
  checki "evictions" 0 (Cache.add c "b" 2);
  checkb "a present" true (Cache.find c "a" = Some 1);
  (* "a" was just refreshed, so adding "c" must evict "b". *)
  checki "evicts one" 1 (Cache.add c "c" 3);
  checkb "b evicted" true (Cache.find c "b" = None);
  checkb "a survives (recency)" true (Cache.find c "a" = Some 1);
  checkb "c present" true (Cache.find c "c" = Some 3);
  checki "size" 2 (Cache.size c)

let cache_replace_refreshes () =
  let c = Cache.create ~capacity:2 in
  ignore (Cache.add c "a" 1);
  ignore (Cache.add c "b" 2);
  checki "replace does not evict" 0 (Cache.add c "a" 10);
  check Alcotest.(list string) "a is newest" [ "b"; "a" ] (Cache.keys c);
  checkb "replaced value" true (Cache.find c "a" = Some 10)

let cache_disabled () =
  let c = Cache.create ~capacity:0 in
  checki "add is a no-op" 0 (Cache.add c "a" 1);
  checkb "nothing stored" true (Cache.find c "a" = None);
  checki "size" 0 (Cache.size c)

let cache_eviction_order () =
  let c = Cache.create ~capacity:3 in
  List.iter (fun k -> ignore (Cache.add c k 0)) [ "a"; "b"; "c" ];
  ignore (Cache.find c "a");
  ignore (Cache.add c "d" 0);
  (* b was the least recently used *)
  check Alcotest.(list string) "order" [ "c"; "a"; "d" ] (Cache.keys c)

let cache_remove () =
  (* The integrity guard's eject path: removal from the middle, the
     ends, and of an absent key must all leave a consistent LRU. *)
  let c = Cache.create ~capacity:4 in
  List.iter (fun k -> ignore (Cache.add c k 0)) [ "a"; "b"; "c"; "d" ];
  Cache.remove c "b";
  checkb "gone" true (Cache.find c "b" = None);
  checki "size" 3 (Cache.size c);
  Cache.remove c "nope";
  checki "absent key is a no-op" 3 (Cache.size c);
  Cache.remove c "a";
  Cache.remove c "d";
  check Alcotest.(list string) "survivor" [ "c" ] (Cache.keys c);
  (* Freed capacity is reusable without a spurious eviction. *)
  checki "no eviction after removes" 0 (Cache.add c "e" 1);
  checkb "reinsert after remove" true (Cache.find c "e" = Some 1)

(* ---- handle table ---- *)

let retained_entry () =
  let g = Cfg_text.parse "cfg h (entry B0, exit B1)\nB0:\n  x := a + b\n  goto B1\nB1:\n  halt\n" in
  let _, saved = Lcm_edge.analyze_keep g in
  { Handles.algorithm = "lcm-edge"; simplify = false; state = (g, saved) }

let handles_mint_and_find () =
  let t = Handles.create ~worker:3 ~capacity:4 in
  let h1, `Evicted e1 = Handles.register t (retained_entry ()) in
  let h2, `Evicted e2 = Handles.register t (retained_entry ()) in
  checki "no eviction below capacity" 0 (List.length e1 + List.length e2);
  checkb "distinct handles" true (h1 <> h2);
  checkb "handle names carry the worker" true (Handles.worker_of_handle h1 = Some 3);
  checkb "registered handle resolves" true (Handles.find t h1 <> None);
  checkb "unknown handle misses" true (Handles.find t "h3-999" = None);
  checki "size" 2 (Handles.size t)

let handles_fifo_eviction () =
  let t = Handles.create ~worker:0 ~capacity:2 in
  let h1, _ = Handles.register t (retained_entry ()) in
  let h2, _ = Handles.register t (retained_entry ()) in
  let h3, `Evicted e = Handles.register t (retained_entry ()) in
  check Alcotest.(list string) "the oldest handle is named evicted" [ h1 ] e;
  checkb "oldest evicted" true (Handles.find t h1 = None);
  checkb "newer survive" true (Handles.find t h2 <> None && Handles.find t h3 <> None);
  checki "bounded" 2 (Handles.size t)

let handles_restore () =
  let t = Handles.create ~worker:0 ~capacity:4 in
  let `Evicted _ = Handles.restore t "h0-7" (retained_entry ()) in
  checkb "restored handle resolves" true (Handles.find t "h0-7" <> None);
  (* Minting resumes past the highest restored sequence. *)
  let h, _ = Handles.register t (retained_entry ()) in
  check Alcotest.string "next mint after restore" "h0-8" h;
  checkb "restoring a live handle is a bug" true
    (match Handles.restore t "h0-7" (retained_entry ()) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "restoring a malformed name is a bug" true
    (match Handles.restore t "nope" (retained_entry ()) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "seq parsing" true (Handles.seq_of_handle "h3-41" = Some 41)

let handles_worker_parse () =
  checkb "h12-34" true (Handles.worker_of_handle "h12-34" = Some 12);
  checkb "not a handle" true (Handles.worker_of_handle "nope" = None);
  checkb "missing seq" true (Handles.worker_of_handle "h1" = None)

(* ---- graph patching ---- *)

let diamond () =
  Cfg_text.parse
    "cfg d (entry B0, exit B1)\n\
     B0:\n\
    \  if a then B2 else B3\n\
     B1:\n\
    \  halt\n\
     B2:\n\
    \  x := a + b\n\
    \  goto B4\n\
     B3:\n\
    \  goto B4\n\
     B4:\n\
    \  y := a + b\n\
    \  goto B1\n"

let patch_set_instrs_dirty () =
  let g = diamond () in
  let dirty = Patch.apply g [ Patch.Set_instrs (2, [ Cfg_text.parse_instr_line "x := a - b" ]) ] in
  check Alcotest.(list int) "dirty = edited block" [ 2 ] dirty;
  checki "body replaced" 1 (List.length (Cfg.instrs g 2))

let patch_set_term_dirty () =
  let g = diamond () in
  let dirty = Patch.apply g [ Patch.Set_term (3, Cfg.Goto 1) ] in
  (* the edited block, its old successor and its new successor all have
     changed meet inputs *)
  List.iter (fun l -> checkb (Printf.sprintf "label %d dirty" l) true (List.mem l dirty)) [ 1; 3; 4 ]

let patch_add_block () =
  let g = diamond () in
  let fresh = Cfg.label_bound g in
  let dirty =
    Patch.apply g
      [
        Patch.Add_block ([ Cfg_text.parse_instr_line "z := a + b" ], Cfg.Goto 4);
        Patch.Set_term (3, Cfg.Goto fresh);
      ]
  in
  checkb "fresh label exists" true (Cfg.mem g fresh);
  checkb "fresh label dirty" true (List.mem fresh dirty);
  checkb "rewired" true (Cfg.successors g 3 = [ fresh ])

let patch_rejects_unknown_target () =
  let g = diamond () in
  match Patch.apply g [ Patch.Set_term (3, Cfg.Goto 99) ] with
  | exception Patch.Error _ -> ()
  | _ -> Alcotest.fail "terminator to an unknown block must be rejected"

let patch_rejects_stray_halt () =
  let g = diamond () in
  match Patch.apply g [ Patch.Set_term (3, Cfg.Halt) ] with
  | exception Patch.Error _ -> ()
  | _ -> Alcotest.fail "halt outside the exit must be rejected"

(* ---- incremental re-solve == from-scratch solve ---- *)

let program_of g = Cfg.to_string (fst (Transform.apply g (Lcm_edge.spec g (Lcm_edge.analyze g))))

(* A pool-preserving random patch: re-compute an existing candidate's rhs
   into a fresh variable somewhere, or rewire a Goto between existing
   blocks.  Both leave the expression universe unchanged, so the capture
   stays admissible and analyze_incr must take the incremental path. *)
let random_admissible_patch rng g =
  let labels = Array.of_list (Cfg.labels g) in
  let pick () = labels.(Prng.int_in rng 0 (Array.length labels - 1)) in
  let candidate_instr =
    List.find_map
      (fun l ->
        List.find_map
          (fun i -> Option.map (fun _ -> i) (Lcm_ir.Instr.candidate i))
          (Cfg.instrs g l))
      (Cfg.labels g)
  in
  match candidate_instr with
  | Some instr when Prng.chance rng ~num:2 ~den:3 ->
    let l = pick () in
    let rhs =
      match String.index_opt (Lcm_ir.Instr.to_string instr) '=' with
      | Some i ->
        let s = Lcm_ir.Instr.to_string instr in
        String.trim (String.sub s (i + 1) (String.length s - i - 1))
      | None -> assert false
    in
    Some [ Patch.Set_instrs (l, Cfg.instrs g l @ [ Cfg_text.parse_instr_line ("zfresh := " ^ rhs) ]) ]
  | _ ->
    (* rewire: point some Goto block at another existing block *)
    let gotos =
      List.filter (fun l -> match Cfg.term g l with Cfg.Goto _ -> true | _ -> false) (Cfg.labels g)
    in
    (match gotos with
    | [] -> None
    | _ ->
      let src = List.nth gotos (Prng.int_in rng 0 (List.length gotos - 1)) in
      let dst = pick () in
      if dst = Cfg.entry g then None else Some [ Patch.Set_term (src, Cfg.Goto dst) ])

let incr_equals_full =
  QCheck2.Test.make ~name:"incremental re-solve is bit-identical to from-scratch" ~count:120
    (QCheck2.Gen.int_bound 1_000_000) (fun seed ->
      let rng = Prng.of_int seed in
      let num_blocks = 4 + Prng.int_in rng 0 16 in
      let g = Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks } rng in
      let _, saved = Lcm_edge.analyze_keep g in
      match random_admissible_patch rng g with
      | None -> true  (* nothing to patch on this graph shape *)
      | Some edits ->
        let patched = Cfg.copy g in
        (match Patch.apply patched edits with
        | exception Patch.Error _ -> true  (* rewire happened to break validity; vacuous *)
        | dirty ->
          (match Lcm_edge.analyze_incr patched ~prev:saved ~dirty with
          | None ->
            QCheck2.Test.fail_reportf "pool-preserving patch fell back to the full solve"
          | Some (a, _, region) ->
            let incr_prog =
              Cfg.to_string (fst (Transform.apply patched (Lcm_edge.spec patched a)))
            in
            let full_prog = program_of (Cfg.copy patched) in
            if incr_prog <> full_prog then
              QCheck2.Test.fail_reportf "programs diverge (seed %d)" seed
            else if region > Cfg.num_blocks patched then
              QCheck2.Test.fail_reportf "affected region larger than the graph"
            else true)))

let incr_capture_reusable () =
  (* The capture returned by analyze_incr supports a second round of
     edits — the delta stream a retained handle serves. *)
  let rng = Prng.of_int 7 in
  let g = Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks = 12 } rng in
  let _, s0 = Lcm_edge.analyze_keep g in
  let apply_round saved =
    match random_admissible_patch rng g with
    | Some edits ->
      let dirty = Patch.apply g edits in
      (match Lcm_edge.analyze_incr g ~prev:saved ~dirty with
      | Some (a, s, _) ->
        let p = Cfg.to_string (fst (Transform.apply (Cfg.copy g) (Lcm_edge.spec g a))) in
        let q = program_of (Cfg.copy g) in
        check Alcotest.string "round bit-identical" q p;
        s
      | None -> Alcotest.fail "admissible patch fell back")
    | None -> saved
  in
  ignore (apply_round (apply_round (apply_round s0)))

let pool_change_falls_back () =
  let g = diamond () in
  let _, saved = Lcm_edge.analyze_keep g in
  (* a brand-new expression (c * d) changes the candidate pool *)
  let dirty =
    Patch.apply g
      [ Patch.Set_instrs (2, [ Cfg_text.parse_instr_line "x := c * d" ]) ]
  in
  checkb "inadmissible capture refused" true (Lcm_edge.analyze_incr g ~prev:saved ~dirty = None)

let suite =
  [
    Alcotest.test_case "chash: deterministic across ring builds" `Quick chash_deterministic;
    Alcotest.test_case "chash: owners within node range" `Quick chash_in_range;
    Alcotest.test_case "chash: every node owns keys" `Quick chash_covers_all_nodes;
    Alcotest.test_case "chash: death moves only the dead node's keys" `Quick
      chash_stability_under_death;
    Alcotest.test_case "chash: all dead -> None" `Quick chash_lookup_alive_none;
    Alcotest.test_case "chash: successor is a distinct live node" `Quick chash_successor;
    Alcotest.test_case "cache: LRU eviction and recency" `Quick cache_basic;
    Alcotest.test_case "cache: replace refreshes without evicting" `Quick cache_replace_refreshes;
    Alcotest.test_case "cache: capacity 0 disables" `Quick cache_disabled;
    Alcotest.test_case "cache: eviction follows recency order" `Quick cache_eviction_order;
    Alcotest.test_case "cache: remove keeps the LRU consistent" `Quick cache_remove;
    Alcotest.test_case "handles: restore rebuilds under the original id" `Quick handles_restore;
    Alcotest.test_case "handles: mint, resolve, worker encoding" `Quick handles_mint_and_find;
    Alcotest.test_case "handles: FIFO eviction at capacity" `Quick handles_fifo_eviction;
    Alcotest.test_case "handles: name parsing" `Quick handles_worker_parse;
    Alcotest.test_case "patch: set_instrs dirties the block" `Quick patch_set_instrs_dirty;
    Alcotest.test_case "patch: set_term dirties both edge ends" `Quick patch_set_term_dirty;
    Alcotest.test_case "patch: add_block + rewire in order" `Quick patch_add_block;
    Alcotest.test_case "patch: unknown target rejected" `Quick patch_rejects_unknown_target;
    Alcotest.test_case "patch: stray halt rejected" `Quick patch_rejects_stray_halt;
    QCheck_alcotest.to_alcotest incr_equals_full;
    Alcotest.test_case "incremental: capture survives a delta stream" `Quick incr_capture_reusable;
    Alcotest.test_case "incremental: pool change falls back to full" `Quick pool_change_falls_back;
  ]
