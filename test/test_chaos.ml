(* Chaos and resilience: the deterministic fault registry, lock hygiene
   under injected exceptions, retry/backoff properties, tiered degradation
   through the engine, EPIPE survival, and a crash-under-load soak of the
   whole daemon.  (Supervisor tests fork, so they live in a standalone
   executable under test/supervisor/.) *)

module Fault = Lcm_support.Fault
module Prng = Lcm_support.Prng
module Pool = Lcm_support.Pool
module Cfg = Lcm_cfg.Cfg
module Json = Lcm_server.Json
module Frame = Lcm_server.Frame
module Bqueue = Lcm_server.Bqueue
module Stats = Lcm_server.Stats
module Protocol = Lcm_server.Protocol
module Engine = Lcm_server.Engine
module Daemon = Lcm_server.Daemon
module Retry = Lcm_server.Retry
module Suites = Lcm_eval.Suites
module Lcm_edge = Lcm_core.Lcm_edge
module Trace = Lcm_obs.Trace

let now = Unix.gettimeofday

(* Every test leaves the process-wide registry disabled, whatever happens:
   a leaked configuration would poison unrelated suites. *)
let with_chaos ~seed spec f =
  Fault.configure ~seed spec;
  Fun.protect ~finally:Fault.disable f

let diamond_text = Lcm_cfg.Cfg_text.to_string (Suites.graph (Option.get (Suites.find "diamond")))

(* An input whose exit is unreachable: every interpreter sample runs out of
   fuel, which is the [fuel_exhausted] case by construction. *)
let spin_text =
  "cfg spin (entry B0, exit B1)\nB0:\n  x := a + b\n  goto B2\nB1:\n  halt\nB2:\n  y := a + b\n  goto B2\n"

(* ---- the fault registry ---- *)

let test_fault_determinism () =
  let pattern () =
    with_chaos ~seed:7 [ ("p.a", 0.3); ("p.b", 1.0); ("p.c", 0.0) ] (fun () ->
        List.init 200 (fun _ -> (Fault.fire "p.a", Fault.fire "p.b", Fault.fire "p.c")))
  in
  let p1 = pattern () and p2 = pattern () in
  Alcotest.(check bool) "same seed, same decisions" true (p1 = p2);
  List.iter
    (fun (_, b, c) ->
      Alcotest.(check bool) "rate 1 always fires" true b;
      Alcotest.(check bool) "rate 0 never fires" false c)
    p1;
  let fired = List.length (List.filter (fun (a, _, _) -> a) p1) in
  Alcotest.(check bool) "rate 0.3 fires sometimes, not always" true (fired > 0 && fired < 200);
  let other =
    with_chaos ~seed:8 [ ("p.a", 0.3) ] (fun () -> List.init 200 (fun _ -> Fault.fire "p.a"))
  in
  Alcotest.(check bool) "different seed, different decisions" false
    (List.map (fun (a, _, _) -> a) p1 = other)

let test_fault_spec_grammar () =
  (match Fault.parse_spec "engine.*=5%,sock.read=0.25" with
  | Ok entries ->
    Alcotest.(check int) "two entries" 2 (List.length entries);
    with_chaos ~seed:1 entries (fun () ->
        Alcotest.(check bool) "unmatched point never fires" false
          (List.exists (fun _ -> Fault.fire "bqueue.push") (List.init 50 Fun.id)))
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Fault.parse_spec "nonsense" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ());
  with_chaos ~seed:3 [ ("engine.*", 1.0); ("engine.panic", 0.0) ] (fun () ->
      (* Later entries win on overlap. *)
      Alcotest.(check bool) "wildcard matches" true (Fault.fire "engine.slow");
      Alcotest.(check bool) "exact override wins" false (Fault.fire "engine.panic"))

(* A supervisor bumps LCM_CHAOS_EPOCH per restart so a forked child does
   not replay its predecessor's fault schedule; install_from_env must mix
   the epoch into the seed, deterministically. *)
let test_fault_epoch () =
  let pattern epoch =
    Unix.putenv Fault.env_var "7:p.a=0.3";
    Unix.putenv Fault.epoch_env_var (string_of_int epoch);
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv Fault.env_var "";
        Unix.putenv Fault.epoch_env_var "";
        Fault.disable ())
      (fun () ->
        match Fault.install_from_env () with
        | Error m -> Alcotest.failf "install failed: %s" m
        | Ok () -> List.init 200 (fun _ -> Fault.fire "p.a"))
  in
  Alcotest.(check bool) "same epoch, same decisions" true (pattern 3 = pattern 3);
  Alcotest.(check bool) "epoch 0 is the plain seed" true
    (pattern 0 = with_chaos ~seed:7 [ ("p.a", 0.3) ] (fun () -> List.init 200 (fun _ -> Fault.fire "p.a")));
  Alcotest.(check bool) "different epoch, different decisions" false (pattern 0 = pattern 1)

let test_fault_disabled_is_free () =
  Fault.disable ();
  Alcotest.(check bool) "disabled" false (Fault.enabled ());
  Alcotest.(check bool) "never fires" false (List.exists Fault.fire (List.init 100 (fun _ -> "x")));
  Alcotest.(check (list (triple string int int))) "no counts" [] (Fault.counts ())

let test_fault_counts () =
  with_chaos ~seed:5 [ ("hit", 1.0) ] (fun () ->
      for _ = 1 to 7 do
        ignore (Fault.fire "hit")
      done;
      (* Points with no matching spec entry stay on the single-atomic-load
         fast path and are deliberately not tracked. *)
      ignore (Fault.fire "probed-but-cold");
      match Fault.counts () with
      | [ ("hit", 7, 7) ] -> ()
      | other ->
        Alcotest.failf "unexpected counts: %s"
          (String.concat "; " (List.map (fun (p, o, f) -> Printf.sprintf "%s %d/%d" p f o) other)))

(* ---- lock hygiene: injected exceptions must not wedge any mutex ---- *)

let test_locks_survive_injection () =
  (* Fire the in-section injection points at 100%, catch the exceptions,
     then disable chaos and check the same structures still work — if any
     mutex were left locked, the clean calls would deadlock. *)
  let g = Suites.graph (Option.get (Suites.find "diamond")) in
  with_chaos ~seed:11 [ ("cfg.adjacency", 1.0); ("bqueue.push", 1.0); ("pool.task", 1.0) ]
    (fun () ->
      (match Cfg.predecessors g (Cfg.entry g) with
      | _ -> Alcotest.fail "cfg.adjacency injection did not fire"
      | exception Fault.Injected _ -> ());
      let q = Bqueue.create ~capacity:4 in
      (match Bqueue.try_push q 1 with
      | _ -> Alcotest.fail "bqueue.push injection did not fire"
      | exception Fault.Injected _ -> ());
      let pool = Pool.create 2 in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          match Pool.run pool [ (fun () -> ()); (fun () -> ()) ] with
          | () -> Alcotest.fail "pool.task injection did not fire"
          | exception Fault.Injected _ -> ()));
  (* Clean world: everything must still function — a mutex left locked by
     the injected exception would deadlock right here. *)
  ignore (Cfg.predecessors g (Cfg.entry g));
  let q = Bqueue.create ~capacity:4 in
  Alcotest.(check bool) "queue works after injection" true (Bqueue.try_push q 1);
  let pool = Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let hits = Atomic.make 0 in
      Pool.run pool (List.init 4 (fun _ () -> Atomic.incr hits));
      Alcotest.(check int) "pool works after injection" 4 (Atomic.get hits))

let test_lock_hammer () =
  (* Many domains hammer one queue while pushes are randomly injected;
     the queue must stay consistent and usable throughout. *)
  with_chaos ~seed:13 [ ("bqueue.push", 0.2) ] (fun () ->
      let q = Bqueue.create ~capacity:64 in
      let pushed = Atomic.make 0 in
      let injected = Atomic.make 0 in
      let workers =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 500 do
                  match Bqueue.try_push q () with
                  | true -> Atomic.incr pushed
                  | false -> ignore (Bqueue.pop_batch q ~max:16)
                  | exception Fault.Injected _ -> Atomic.incr injected
                done))
      in
      List.iter Domain.join workers;
      Alcotest.(check bool) "some pushes were injected" true (Atomic.get injected > 0);
      Alcotest.(check bool) "some pushes succeeded" true (Atomic.get pushed > 0);
      (* Drain: total popped (+ still queued) must equal successful pushes. *)
      let rec drain n = match Bqueue.pop_batch q ~max:64 with [] -> n | l -> drain (n + List.length l) in
      let drained0 = 2000 - Atomic.get injected - Atomic.get pushed in
      ignore drained0;
      let total = ref (drain 0) in
      Alcotest.(check bool) "queue drains and stays consistent" true (!total <= Atomic.get pushed))

(* ---- retry policy (QCheck) ---- *)

let policy_gen =
  QCheck2.Gen.(
    map4
      (fun retries base cap budget ->
        {
          Retry.retries;
          base_ms = float_of_int base;
          cap_ms = float_of_int (base + cap);
          budget_ms = (if budget = 0 then None else Some (float_of_int budget));
        })
      (int_bound 20) (int_range 1 500) (int_bound 10_000) (int_bound 10_000))

let prop_backoff_monotone =
  QCheck2.Test.make ~name:"retry: pre-jitter backoff is monotone and capped" ~count:200 policy_gen
    (fun p ->
      let prev = ref 0. in
      List.for_all
        (fun k ->
          let b = Retry.backoff_ms p ~attempt:k in
          let ok = b >= !prev && b <= p.Retry.cap_ms in
          prev := b;
          ok)
        (List.init 30 Fun.id))

let prop_jitter_bounded =
  QCheck2.Test.make ~name:"retry: delay jitter stays within [b/2, b]" ~count:200
    QCheck2.Gen.(pair policy_gen (int_bound 1_000_000))
    (fun (p, seed) ->
      let rng = Prng.of_int seed in
      List.for_all
        (fun k ->
          match Retry.next_delay_ms { p with Retry.budget_ms = None } rng ~attempt:k ~elapsed_ms:0. with
          | None -> k >= p.Retry.retries
          | Some d ->
            let b = Retry.backoff_ms p ~attempt:k in
            k < p.Retry.retries && d >= (b /. 2.) -. 1e-9 && d <= b +. 1e-9)
        (List.init 25 Fun.id))

let prop_budget_respected =
  QCheck2.Test.make ~name:"retry: the deadline budget bounds every delay" ~count:200
    QCheck2.Gen.(triple policy_gen (int_bound 1_000_000) (int_bound 12_000))
    (fun (p, seed, elapsed) ->
      let elapsed_ms = float_of_int elapsed in
      let rng = Prng.of_int seed in
      List.for_all
        (fun k ->
          match Retry.next_delay_ms p rng ~attempt:k ~elapsed_ms with
          | None -> true (* gave up: retries or budget exhausted — always allowed *)
          | Some d ->
            (match p.Retry.budget_ms with
            | None -> true
            | Some budget -> elapsed_ms < budget && d <= (budget -. elapsed_ms) +. 1e-9))
        (List.init 25 Fun.id))

let test_retryable_codes () =
  List.iter
    (fun (code, expect) ->
      Alcotest.(check bool) code expect (Retry.retryable_code code))
    [
      ("overloaded", true);
      ("shutting_down", true);
      ("bad_request", false);
      ("deadline_exceeded", false);
      ("fuel_exhausted", false);
      ("internal", false);
    ]

(* ---- engine degradation and validation ---- *)

let engine_exec ?pool req =
  let stats = Stats.create () in
  let t = now () in
  (Json.parse (Engine.execute (Engine.default_config ?pool stats) ~now ~arrival:t ~deadline:None req), stats)

let run_request ?(algorithm = "lcm-edge") ?(workers = 1) ?(validate = false) program =
  {
    Protocol.id = Json.Int 1;
    op =
      Protocol.Run
        { Protocol.program; format = "cfg"; func = None; algorithm; simplify = false; workers; validate; retain = false };
    deadline_ms = None;
    trace_id = None;
  }

let str_field name j = Option.bind (Json.member name j) Json.to_string_opt

let test_degrade_to_identity () =
  (* Every non-identity tier panics at its chaos boundary: the request is
     served by the identity tier, marked and validated. *)
  with_chaos ~seed:21 [ ("engine.panic", 1.0) ] (fun () ->
      let resp, stats = engine_exec (run_request diamond_text) in
      Alcotest.(check (option string)) "status" (Some "ok") (str_field "status" resp);
      Alcotest.(check (option string)) "degraded" (Some "identity") (str_field "degraded" resp);
      Alcotest.(check (option string)) "program is the original" (Some diamond_text)
        (str_field "program" resp);
      Alcotest.(check bool) "fallbacks counted" true
        (Stats.counter_value stats "engine.tier_fallbacks" >= 1);
      Alcotest.(check int) "degraded counted" 1 (Stats.counter_value stats "degraded.identity"))

let test_degrade_par_to_seq () =
  (* The parallel tier panics on its first boundary probe (occurrence 1);
     the sequential tier probes occurrences 2.. which a one-shot rate spec
     cannot express, so use a rate that deterministically fires on the
     first probe but not the next two (seed chosen accordingly). *)
  let pool = Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (* Find a seed where occurrence 1 fires and 2,3 do not: determinism
         makes this a fixed property of the seed, not a flaky search. *)
      let seed =
        let rec find s =
          if s > 10_000 then Alcotest.fail "no seed found"
          else begin
            Fault.configure ~seed:s [ ("engine.panic", 0.5) ];
            let a = Fault.fire "engine.panic" in
            let b = Fault.fire "engine.panic" in
            let c = Fault.fire "engine.panic" in
            Fault.disable ();
            if a && (not b) && not c then s else find (s + 1)
          end
        in
        find 0
      in
      with_chaos ~seed [ ("engine.panic", 0.5) ] (fun () ->
          let resp, _ = engine_exec ~pool (run_request ~workers:2 diamond_text) in
          Alcotest.(check (option string)) "status" (Some "ok") (str_field "status" resp);
          Alcotest.(check (option string)) "degraded to sequential" (Some "sequential")
            (str_field "degraded" resp);
          (* The sequential fallback is bit-identical to the one-shot path. *)
          let expected =
            Cfg.to_string (fst (Lcm_edge.transform (Lcm_cfg.Cfg_text.parse diamond_text)))
          in
          Alcotest.(check (option string)) "bit-identical" (Some expected) (str_field "program" resp)))

let test_validate_flag () =
  let resp, stats = engine_exec (run_request ~validate:true diamond_text) in
  Alcotest.(check (option string)) "status" (Some "ok") (str_field "status" resp);
  Alcotest.(check (option bool)) "validated" (Some true)
    (Option.bind (Json.member "validated" resp) Json.to_bool_opt);
  Alcotest.(check int) "validated counted" 1 (Stats.counter_value stats "validated_total");
  (* Validation must not change the served program. *)
  let plain, _ = engine_exec (run_request diamond_text) in
  Alcotest.(check (option string)) "same program" (str_field "program" plain) (str_field "program" resp)

let test_validate_fuel_exhausted () =
  let resp, _ = engine_exec (run_request ~validate:true spin_text) in
  Alcotest.(check (option string)) "status" (Some "error") (str_field "status" resp);
  Alcotest.(check (option string)) "code" (Some "fuel_exhausted") (str_field "code" resp);
  (* Without explicit validation the same program serves fine. *)
  let resp, _ = engine_exec (run_request spin_text) in
  Alcotest.(check (option string)) "serves without validate" (Some "ok") (str_field "status" resp)

(* ---- stats persistence ---- *)

let test_stats_persistence_roundtrip () =
  let path = Filename.temp_file "lcm-stats" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let a = Stats.create () in
      Stats.incr ~by:3 a "alpha";
      Stats.observe_ms a "lat" 2.0;
      Stats.observe_ms a "lat" 200.0;
      Stats.save_file a path;
      let b = Stats.create () in
      Stats.incr ~by:2 b "alpha";
      Stats.load_file b path;
      Alcotest.(check int) "counters merge additively" 5 (Stats.counter_value b "alpha");
      (match Stats.quantile_ms b "lat" 0.5 with
      | Some _ -> ()
      | None -> Alcotest.fail "histogram not restored");
      (* Corrupt and missing files are ignored. *)
      let oc = open_out path in
      output_string oc "{not json";
      close_out oc;
      Stats.load_file b path;
      Stats.load_file b (path ^ ".does-not-exist");
      Alcotest.(check int) "corrupt load is a no-op" 5 (Stats.counter_value b "alpha"))

(* Supervisor tests live in test/supervisor/: [Supervisor.run] forks, and
   OCaml 5 forbids fork once any domain has been spawned, which earlier
   suites in this executable do.  The standalone runner forks first. *)

(* ---- daemon resilience ---- *)

(* In-process daemon over pipes (the `--stdio` shape).  The writer runs on
   its own domain while this one drains responses — at soak volumes both
   pipes fill, so a single-threaded write-then-read would deadlock against
   the daemon. *)
let with_daemon ?(cfg = Daemon.default_config ()) write_requests =
  let cfg = { cfg with Daemon.quiet = true; workers = 2; stats = Stats.create () } in
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  let d = Domain.spawn (fun () -> Daemon.serve_fds cfg ~fd_in:req_r ~fd_out:resp_w) in
  let writer =
    Domain.spawn (fun () ->
        write_requests req_w;
        try Unix.close req_w with Unix.Unix_error _ -> ())
  in
  (* Close the response pipe's write end only when the daemon is done, so
     the drain below sees end-of-file; meanwhile this domain keeps
     draining, which is what lets the daemon make progress at all. *)
  let closer =
    Domain.spawn (fun () ->
        Domain.join writer;
        Domain.join d;
        Unix.close resp_w)
  in
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec slurp () =
    match Unix.read resp_r chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      slurp ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> slurp ()
  in
  slurp ();
  Domain.join closer;
  Unix.close req_r;
  Unix.close resp_r;
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  List.filter (fun l -> l <> "") lines

let test_soak_under_chaos () =
  (* 1000 mixed requests against an in-process daemon with every soft
     fault point firing at 5%.  The daemon must answer every single frame
     (ok, typed error, or degraded), never die, and drain cleanly.
     Process-killing and socket-killing points stay out: in-process
     daemons refuse hard faults by construction, and the pipe conn does
     not own its fds, which is also asserted here by including the specs. *)
  let n = 1000 in
  with_chaos ~seed:2026
    [
      ("engine.slow", 0.01);
      ("engine.alloc", 0.05);
      ("engine.panic", 0.05);
      ("pool.task", 0.05);
      ("bqueue.push", 0.05);
      ("queue.reject", 0.05);
      ("cfg.adjacency", 0.02);
      ("pool.reading", 0.02);
      ("sock.read", 0.05);
      ("sock.write", 0.05);
      ("daemon.crash", 0.05);
    ]
    (fun () ->
      let program = Json.to_string (Json.String diamond_text) in
      let responses =
        with_daemon (fun w ->
            for i = 1 to n do
              let frame =
                match i mod 5 with
                | 0 -> Printf.sprintf "{\"id\":%d,\"op\":\"ping\"}" i
                | 4 -> Printf.sprintf "{\"id\":%d,\"op\":\"sleep\",\"duration_ms\":0}" i
                | 3 -> Printf.sprintf "{\"id\":%d,\"op\":\"run\",\"program\":%s,\"validate\":true}" i program
                | _ -> Printf.sprintf "{\"id\":%d,\"op\":\"run\",\"program\":%s}" i program
              in
              Frame.write_frame w frame
            done)
      in
      Alcotest.(check int) "every request answered" n (List.length responses);
      let ids = Hashtbl.create n in
      let degraded = ref 0 in
      let errors = ref 0 in
      List.iter
        (fun l ->
          let j = Json.parse l in
          (match Option.bind (Json.member "id" j) Json.to_int_opt with
          | Some id -> Hashtbl.replace ids id ()
          | None -> Alcotest.failf "response without id: %s" l);
          (match str_field "status" j with
          | Some "ok" -> if str_field "degraded" j <> None then incr degraded
          | Some "error" -> incr errors
          | _ -> Alcotest.failf "bad status in %s" l))
        responses;
      Alcotest.(check int) "all ids answered exactly once" n (Hashtbl.length ids);
      (* With panics at 5% some requests must have degraded — the proof
         that the fallback path, not luck, carried the load. *)
      Alcotest.(check bool) "some requests degraded" true (!degraded > 0))

let test_trace_id_survives_retry () =
  (* A queue.reject fault sheds the first admission; the client resends
     under the SAME trace_id.  The daemon's --trace-dir file for that id
     must then hold one well-formed span forest covering both attempts:
     the rejected admission and the full run.  (The restart-crossing half
     of this contract lives in test/supervisor/, which may fork.) *)
  let reject_seed =
    let rec go s =
      if s > 10_000 then Alcotest.fail "no reject-then-accept seed found"
      else begin
        Fault.configure ~seed:s [ ("queue.reject", 0.5) ];
        let first = Fault.fire "queue.reject" in
        let second = Fault.fire "queue.reject" in
        Fault.disable ();
        if first && not second then s else go (s + 1)
      end
    in
    go 1
  in
  let dir = Filename.temp_file "lcmd-trace" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let responses =
        with_chaos ~seed:reject_seed
          [ ("queue.reject", 0.5) ]
          (fun () ->
            with_daemon
              ~cfg:{ (Daemon.default_config ()) with Daemon.trace_dir = Some dir }
              (fun w ->
                let frame id =
                  Printf.sprintf "{\"id\":%d,\"trace_id\":\"soak-trace\",\"op\":\"run\",\"program\":%s}"
                    id
                    (Json.to_string (Json.String diamond_text))
                in
                (* Attempt 1 is shed by construction; attempt 2 runs. *)
                Frame.write_frame w (frame 1);
                Frame.write_frame w (frame 2)))
      in
      let statuses =
        List.map (fun l -> Option.get (str_field "status" (Json.parse l))) responses
      in
      Alcotest.(check (list string)) "reject then ok" [ "error"; "ok" ] statuses;
      List.iter
        (fun l ->
          Alcotest.(check (option string)) "trace id echoed on both" (Some "soak-trace")
            (str_field "trace_id" (Json.parse l)))
        responses;
      let path = Filename.concat dir "soak-trace.trace.json" in
      let content = In_channel.with_open_text path In_channel.input_all in
      let events =
        (* The per-trace file is a legal-but-unterminated Chrome array. *)
        match Json.parse (content ^ "null]") with
        | Json.List l -> List.filter (fun e -> e <> Json.Null) l
        | _ -> Alcotest.fail "trace file is not a JSON array"
      in
      let arg name e =
        Json.member name (Option.value (Json.member "args" e) ~default:Json.Null)
      in
      let names =
        List.filter_map (fun e -> Option.bind (Json.member "name" e) Json.to_string_opt) events
      in
      let ids = List.filter_map (fun e -> Option.bind (arg "span_id" e) Json.to_int_opt) events in
      List.iter
        (fun e ->
          Alcotest.(check (option string)) "one trace id in the file" (Some "soak-trace")
            (Option.bind (arg "trace_id" e) Json.to_string_opt);
          match Option.bind (arg "parent_id" e) Json.to_int_opt with
          | Some p -> Alcotest.(check bool) "parents resolve" true (p = -1 || List.mem p ids)
          | None -> Alcotest.fail "event without parent_id")
        events;
      Alcotest.(check int) "one admission span per attempt" 2
        (List.length (List.filter (String.equal "daemon.admission") names));
      Alcotest.(check bool) "the accepted attempt ran end to end" true
        (List.mem "request" names && List.mem "lcm.latest" names))

let test_daemon_survives_epipe () =
  (* A socket client that sends a request and slams the connection shut:
     the daemon's response write hits EPIPE/ECONNRESET and must neither
     kill the daemon nor poison other connections. *)
  let path = Filename.temp_file "lcmd-epipe" ".sock" in
  Sys.remove path;
  let cfg = { (Daemon.default_config ()) with Daemon.quiet = true; workers = 1; stats = Stats.create () } in
  let d = Domain.spawn (fun () -> Daemon.serve_unix_socket cfg ~path) in
  Fun.protect
    ~finally:(fun () ->
      Daemon.request_shutdown ();
      Domain.join d)
    (fun () ->
      let rec connect tries =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> fd
        | exception Unix.Unix_error _ when tries > 0 ->
          Unix.close fd;
          Unix.sleepf 0.05;
          connect (tries - 1)
      in
      (* Rude client: request then immediate close, several times over. *)
      for _ = 1 to 5 do
        let fd = connect 100 in
        Frame.write_frame fd
          (Printf.sprintf "{\"id\":1,\"op\":\"run\",\"program\":%s}" (Json.to_string (Json.String diamond_text)));
        Unix.close fd
      done;
      Unix.sleepf 0.2;
      (* Polite client: the daemon must still answer. *)
      let fd = connect 100 in
      Frame.write_frame fd "{\"id\":2,\"op\":\"ping\"}";
      let buf = Bytes.create 4096 in
      let rec read_line acc =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> acc
        | n ->
          let acc = acc ^ Bytes.sub_string buf 0 n in
          if String.contains acc '\n' then acc else read_line acc
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line acc
      in
      let resp = read_line "" in
      Unix.close fd;
      let j = Json.parse (List.hd (String.split_on_char '\n' resp)) in
      Alcotest.(check (option string)) "daemon alive after EPIPE storms" (Some "ok")
        (str_field "status" j))

let suite =
  [
    Alcotest.test_case "fault registry determinism" `Quick test_fault_determinism;
    Alcotest.test_case "fault spec grammar" `Quick test_fault_spec_grammar;
    Alcotest.test_case "fault epoch perturbation" `Quick test_fault_epoch;
    Alcotest.test_case "fault disabled is free" `Quick test_fault_disabled_is_free;
    Alcotest.test_case "fault counts" `Quick test_fault_counts;
    Alcotest.test_case "locks survive injection" `Quick test_locks_survive_injection;
    Alcotest.test_case "lock hammer under injection" `Quick test_lock_hammer;
    QCheck_alcotest.to_alcotest prop_backoff_monotone;
    QCheck_alcotest.to_alcotest prop_jitter_bounded;
    QCheck_alcotest.to_alcotest prop_budget_respected;
    Alcotest.test_case "retryable codes" `Quick test_retryable_codes;
    Alcotest.test_case "degrade to identity" `Quick test_degrade_to_identity;
    Alcotest.test_case "degrade parallel to sequential" `Quick test_degrade_par_to_seq;
    Alcotest.test_case "validate flag" `Quick test_validate_flag;
    Alcotest.test_case "validate fuel exhaustion" `Quick test_validate_fuel_exhausted;
    Alcotest.test_case "stats persistence roundtrip" `Quick test_stats_persistence_roundtrip;
    Alcotest.test_case "soak: 1k requests under 5% chaos" `Quick test_soak_under_chaos;
    Alcotest.test_case "trace_id survives a client retry" `Quick test_trace_id_survives_retry;
    Alcotest.test_case "daemon survives EPIPE" `Quick test_daemon_survives_epipe;
  ]
