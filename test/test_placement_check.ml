(* The static placement verifier: accepts sound specs, rejects broken
   ones. *)

module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Placement_check = Lcm_core.Placement_check
module Lcm_edge = Lcm_core.Lcm_edge
module Bcm_edge = Lcm_core.Bcm_edge
module Transform = Lcm_core.Transform
module Suites = Lcm_eval.Suites
module Gencfg = Lcm_eval.Gencfg
module Prng = Lcm_support.Prng
module Lcse = Lcm_opt.Lcse

let specs_of g =
  [
    ("lcm-edge", Lcm_edge.spec g (Lcm_edge.analyze g));
    ("bcm-edge", Bcm_edge.spec g (Bcm_edge.analyze g));
    ("morel-renvoise", Lcm_baselines.Morel_renvoise.spec g (Lcm_baselines.Morel_renvoise.analyze g));
    ("gcse", Lcm_baselines.Gcse.spec g (Lcm_baselines.Gcse.analyze g));
  ]

let test_sound_specs_on_workloads () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      List.iter
        (fun (name, spec) ->
          match Placement_check.check g spec with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s/%s: %s" w.Suites.name name m)
        (specs_of g))
    Suites.all

let test_sound_specs_on_random_graphs () =
  let rng = Prng.of_int 4242 in
  for _ = 1 to 40 do
    let g = fst (Lcse.run (Gencfg.random_cfg rng)) in
    List.iter
      (fun (name, spec) ->
        match Placement_check.check g spec with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: %s" name m)
      (specs_of g)
  done

let test_rejects_uncovered_deletion () =
  (* A deletion with no insertion anywhere cannot be covered (partial
     redundancy in the diamond). *)
  let w = Option.get (Suites.find "diamond") in
  let g = Suites.graph w in
  let sound = Lcm_edge.spec g (Lcm_edge.analyze g) in
  let broken = { sound with Transform.edge_inserts = []; copies = [] } in
  (match Placement_check.check g broken with
  | Ok () -> Alcotest.fail "verifier accepted an uncovered deletion"
  | Error _ -> ());
  (* Dropping only the copies must also be caught: the computing arm no
     longer seeds the temporary. *)
  let no_copies = { sound with Transform.copies = [] } in
  match Placement_check.check g no_copies with
  | Ok () -> Alcotest.fail "verifier accepted a spec without its copies"
  | Error _ -> ()

let test_rejects_stale_insertion () =
  (* An insertion above a kill does not cover a use below it. *)
  let g =
    Lower.parse_and_lower_func "function f(a, b) { a = a + 1; x = a + b; return x; }"
  in
  let pool = Cfg.candidate_pool g in
  let idx =
    Option.get
      (Lcm_ir.Expr_pool.index pool (Lcm_ir.Expr.Binary (Lcm_ir.Expr.Add, Lcm_ir.Expr.Var "a", Lcm_ir.Expr.Var "b")))
  in
  let one = Bitvec.create (Lcm_ir.Expr_pool.size pool) in
  Bitvec.set one idx true;
  let body = List.hd (Cfg.successors g (Cfg.entry g)) in
  let spec =
    {
      (Transform.identity_spec pool "broken") with
      Transform.temp_names = Lcm_core.Temps.names g pool;
      edge_inserts = [ ((Cfg.entry g, body), Bitvec.copy one) ];
      deletes = [ (body, Bitvec.copy one) ];
    }
  in
  match Placement_check.check g spec with
  | Ok () -> Alcotest.fail "verifier accepted an insertion above a kill"
  | Error _ -> ()

let test_accepts_direct_coverage () =
  (* Insertion directly on the incoming edge of the use: fine. *)
  let g = Lower.parse_and_lower_func "function f(a, b) { x = a + b; return x; }" in
  let pool = Cfg.candidate_pool g in
  let one = Bitvec.create_full (Lcm_ir.Expr_pool.size pool) in
  let body = List.hd (Cfg.successors g (Cfg.entry g)) in
  let spec =
    {
      (Transform.identity_spec pool "manual") with
      Transform.temp_names = Lcm_core.Temps.names g pool;
      edge_inserts = [ ((Cfg.entry g, body), Bitvec.copy one) ];
      deletes = [ (body, Bitvec.copy one) ];
    }
  in
  match Placement_check.check g spec with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let suite =
  [
    Alcotest.test_case "sound specs verified on workloads" `Quick test_sound_specs_on_workloads;
    Alcotest.test_case "sound specs verified on random graphs" `Quick test_sound_specs_on_random_graphs;
    Alcotest.test_case "rejects uncovered deletion" `Quick test_rejects_uncovered_deletion;
    Alcotest.test_case "rejects stale insertion" `Quick test_rejects_stale_insertion;
    Alcotest.test_case "accepts direct coverage" `Quick test_accepts_direct_coverage;
  ]
