(* Property-based checks of the paper's theorems on random programs and
   random graphs, plus brute-force optimality on tiny graphs. *)

module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Prng = Lcm_support.Prng
module Gencfg = Lcm_eval.Gencfg
module Oracle = Lcm_eval.Oracle
module Brute = Lcm_eval.Brute
module Registry = Lcm_eval.Registry
module Metrics = Lcm_eval.Metrics
module Suites = Lcm_eval.Suites
module Lcse = Lcm_opt.Lcse

(* Deterministic seeds via qcheck's integer generator: each case runs on a
   seed-derived program, so failures are reproducible from the printed
   seed. *)
let seed_gen = QCheck2.Gen.int_bound 1_000_000

let structured_graph seed =
  let rng = Prng.of_int seed in
  let f = Gencfg.random_func rng in
  let g = Lower.func f in
  fst (Lcse.run g)

let raw_graph seed =
  let rng = Prng.of_int (seed + 7919) in
  fst (Lcse.run (Gencfg.random_cfg rng))

let inputs = Gencfg.func_inputs Gencfg.default_func_params
let raw_inputs = [ "a"; "b"; "c"; "d" ]

let paper_algorithms = Registry.paper_algorithms
let safe_algorithms = Registry.safe

(* Theorem: transformations preserve semantics (structured programs,
   interpreted on random inputs). *)
let prop_semantics =
  QCheck2.Test.make ~name:"EXP-T1a: all algorithms preserve semantics" ~count:60 seed_gen
    (fun seed ->
      let g = structured_graph seed in
      List.for_all
        (fun (e : Registry.entry) ->
          let g' = e.Registry.run g in
          match Oracle.semantics ~runs:8 ~inputs (Prng.of_int (seed * 3 + 1)) ~original:g ~transformed:g' with
          | Ok () -> true
          | Error m -> QCheck2.Test.fail_reportf "%s: %s" e.Registry.name m)
        Registry.all)

(* Theorem: per-path safety of everything except speculative LICM —
   checked on raw random graphs where all decision paths count, including
   infeasible ones. *)
let prop_safety =
  QCheck2.Test.make ~name:"EXP-T1b: safe algorithms never add evaluations to any path" ~count:60
    seed_gen (fun seed ->
      let g = raw_graph seed in
      let pool = Cfg.candidate_pool g in
      List.for_all
        (fun (e : Registry.entry) ->
          let g' = e.Registry.run g in
          (* Per-expression counts for identity-preserving passes; per-path
             totals when copy propagation may have renamed operands. *)
          let verdict =
            if e.Registry.preserves_expressions then Oracle.safety ~max_decisions:8 ~pool ~original:g g'
            else Oracle.computations_leq ~max_decisions:8 ~pool g' g
          in
          match verdict with
          | Ok () -> true
          | Error m -> QCheck2.Test.fail_reportf "%s: %s" e.Registry.name m)
        safe_algorithms)

(* Inserted temporaries are always defined before use, on every path.
   Speculative passes are exempt: hoisting a computation to a pre-header
   legitimately reads its operands on paths that never did. *)
let prop_no_undefined_temps =
  QCheck2.Test.make ~name:"temps defined before use on all paths" ~count:60 seed_gen (fun seed ->
      let g = raw_graph seed in
      List.for_all
        (fun (e : Registry.entry) ->
          let g' = e.Registry.run g in
          match Oracle.no_undefined_temp_reads ~max_decisions:8 ~inputs:raw_inputs ~original:g g' with
          | Ok () -> true
          | Error m -> QCheck2.Test.fail_reportf "%s: %s" e.Registry.name m)
        safe_algorithms)

(* Theorem (computational optimality): the LCM family never evaluates more
   than the original or any baseline, on any path. *)
let prop_optimal_vs_baselines =
  QCheck2.Test.make ~name:"EXP-T2a: LCM-edge dominates original/gcse/mr on every path" ~count:40
    seed_gen (fun seed ->
      let g = raw_graph seed in
      let pool = Cfg.candidate_pool g in
      let lcm = (Option.get (Registry.find "lcm-edge")).Registry.run g in
      List.for_all
        (fun name ->
          let other = (Option.get (Registry.find name)).Registry.run g in
          match Oracle.computations_leq ~max_decisions:8 ~pool lcm other with
          | Ok () -> true
          | Error m -> QCheck2.Test.fail_reportf "vs %s: %s" name m)
        [ "identity"; "gcse"; "morel-renvoise"; "bcm-edge" ])

(* BCM and LCM agree exactly on per-path counts (both optimal). *)
let prop_bcm_equals_lcm =
  QCheck2.Test.make ~name:"EXP-T2b: BCM and LCM have equal path counts" ~count:40 seed_gen
    (fun seed ->
      let g = raw_graph seed in
      let pool = Cfg.candidate_pool g in
      let lcm = (Option.get (Registry.find "lcm-edge")).Registry.run g in
      let bcm = (Option.get (Registry.find "bcm-edge")).Registry.run g in
      match
        ( Oracle.computations_leq ~max_decisions:8 ~pool lcm bcm,
          Oracle.computations_leq ~max_decisions:8 ~pool bcm lcm )
      with
      | Ok (), Ok () -> true
      | Error m, _ | _, Error m -> QCheck2.Test.fail_reportf "%s" m)

(* Node- and edge-based LCM agree on per-path counts. *)
let prop_node_equals_edge =
  QCheck2.Test.make ~name:"node and edge LCM have equal path counts" ~count:30 seed_gen (fun seed ->
      let g = raw_graph seed in
      let pool = Cfg.candidate_pool g in
      let edge = (Option.get (Registry.find "lcm-edge")).Registry.run g in
      let node = (Option.get (Registry.find "lcm-node")).Registry.run g in
      match
        ( Oracle.computations_leq ~max_decisions:8 ~pool edge node,
          Oracle.computations_leq ~max_decisions:8 ~pool node edge )
      with
      | Ok (), Ok () -> true
      | Error m, _ | _, Error m -> QCheck2.Test.fail_reportf "%s" m)

(* Theorem (lifetime ordering): LCM's temporaries live no longer than
   ALCM's, which live no longer than BCM's. *)
let prop_lifetime_ordering =
  QCheck2.Test.make ~name:"EXP-T3: lifetime ordering LCM <= ALCM <= BCM (node forms)" ~count:30
    seed_gen (fun seed ->
      let g = raw_graph seed in
      let gran = Lcm_cfg.Granulate.run g in
      let lifetime name =
        let h = (Option.get (Registry.find name)).Registry.run g in
        Metrics.temp_lifetime h ~temps:(Registry.new_temps ~original:gran ~transformed:h)
      in
      let l = lifetime "lcm-node" and a = lifetime "alcm-node" and b = lifetime "bcm-node" in
      if l <= a && a <= b then true
      else QCheck2.Test.fail_reportf "lifetimes: lcm=%d alcm=%d bcm=%d" l a b)

(* Brute force on tiny single-expression graphs: no safe placement beats
   LCM on any path (computational optimality, checked exhaustively). *)
let prop_brute_force_optimality =
  QCheck2.Test.make ~name:"EXP-T2c: brute-force computational optimality" ~count:20 seed_gen
    (fun seed ->
      let rng = Prng.of_int (seed + 13) in
      let g = fst (Lcse.run (Gencfg.random_single_expr_cfg ~blocks:4 rng)) in
      if Cfg.num_candidate_occurrences g = 0 || List.length (Cfg.edges g) > 10 then true
      else begin
        let lcm = (Option.get (Registry.find "lcm-edge")).Registry.run g in
        match Brute.check_computational_optimality ~max_decisions:7 g ~transformed:lcm with
        | Ok () -> true
        | Error m -> QCheck2.Test.fail_reportf "%s" m
      end)

(* The same exhaustively for lifetimes among computationally optimal
   placements. *)
let prop_brute_force_lifetime =
  QCheck2.Test.make ~name:"EXP-T3b: brute-force lifetime optimality" ~count:12 seed_gen
    (fun seed ->
      let rng = Prng.of_int (seed + 101) in
      let g = fst (Lcse.run (Gencfg.random_single_expr_cfg ~blocks:3 rng)) in
      if Cfg.num_candidate_occurrences g = 0 || List.length (Cfg.edges g) > 9 then true
      else begin
        let lcm = (Option.get (Registry.find "lcm-edge")).Registry.run g in
        let temps = Registry.new_temps ~original:g ~transformed:lcm in
        match Brute.check_lifetime_optimality ~max_decisions:7 g ~transformed:lcm ~temps with
        | Ok () -> true
        | Error m -> QCheck2.Test.fail_reportf "%s" m
      end)

(* Transformations are idempotent in effect: running LCM on LCM output
   changes no path counts. *)
let prop_lcm_idempotent_counts =
  QCheck2.Test.make ~name:"LCM twice = LCM once (path counts)" ~count:30 seed_gen (fun seed ->
      let g = raw_graph seed in
      let pool = Cfg.candidate_pool g in
      let once = (Option.get (Registry.find "lcm-edge")).Registry.run g in
      let twice = (Option.get (Registry.find "lcm-edge")).Registry.run once in
      match
        ( Oracle.computations_leq ~max_decisions:8 ~pool once twice,
          Oracle.computations_leq ~max_decisions:8 ~pool twice once )
      with
      | Ok (), Ok () -> true
      | Error m, _ | _, Error m -> QCheck2.Test.fail_reportf "%s" m)

(* Structured programs: paper algorithms keep the dynamic evaluation count
   at most the original's (interpreter-level safety). *)
let prop_dynamic_never_worse =
  QCheck2.Test.make ~name:"dynamic evals never increase (paper algorithms)" ~count:40 seed_gen
    (fun seed ->
      let g = structured_graph seed in
      let pool = Cfg.candidate_pool g in
      let rng = Prng.of_int (seed + 5) in
      let envs = List.init 5 (fun _ -> Gencfg.random_env rng Gencfg.default_func_params) in
      match Metrics.dynamic_evals ~pool ~envs g with
      | None -> true (* original ran out of fuel: skip *)
      | Some base ->
        List.for_all
          (fun (e : Registry.entry) ->
            let g' = e.Registry.run g in
            match Metrics.dynamic_evals ~pool ~envs g' with
            | None -> QCheck2.Test.fail_reportf "%s: transformed did not terminate" e.Registry.name
            | Some n ->
              if n <= base then true
              else QCheck2.Test.fail_reportf "%s: %d > %d evals" e.Registry.name n base)
          paper_algorithms)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_semantics;
      prop_safety;
      prop_no_undefined_temps;
      prop_optimal_vs_baselines;
      prop_bcm_equals_lcm;
      prop_node_equals_edge;
      prop_lifetime_ordering;
      prop_brute_force_optimality;
      prop_brute_force_lifetime;
      prop_lcm_idempotent_counts;
      prop_dynamic_never_worse;
    ]
