(* Local predicates, availability, anticipatability, liveness, solver. *)

module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Instr = Lcm_ir.Instr
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Live = Lcm_dataflow.Live
module Var_pool = Lcm_dataflow.Var_pool

let a_plus_b = Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")

let bit local f l = Bitvec.get (f local l) 0

(* One block: x := a+b ; a := 0 ; y := a+b *)
let test_local_predicates_kill () =
  let g = Cfg.create () in
  let b =
    Cfg.add_block g
      ~instrs:
        [
          Instr.Assign ("x", a_plus_b);
          Instr.Assign ("a", Expr.Atom (Expr.Const 0));
          Instr.Assign ("y", a_plus_b);
        ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  Alcotest.(check bool) "antloc" true (bit local Local.antloc b);
  Alcotest.(check bool) "comp (recomputed after kill)" true (bit local Local.comp b);
  Alcotest.(check bool) "not transparent" false (bit local Local.transp b)

(* x := x + 1: upwards exposed but not downwards exposed. *)
let test_local_self_kill () =
  let g = Cfg.create () in
  let b =
    Cfg.add_block g
      ~instrs:[ Instr.Assign ("x", Expr.Binary (Expr.Add, Expr.Var "x", Expr.Const 1)) ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  Alcotest.(check bool) "antloc" true (bit local Local.antloc b);
  Alcotest.(check bool) "not comp" false (bit local Local.comp b);
  Alcotest.(check bool) "not transparent" false (bit local Local.transp b)

(* kill before the computation: not upwards exposed. *)
let test_local_kill_before () =
  let g = Cfg.create () in
  let b =
    Cfg.add_block g
      ~instrs:[ Instr.Assign ("a", Expr.Atom (Expr.Const 0)); Instr.Assign ("x", a_plus_b) ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  Alcotest.(check bool) "not antloc" false (bit local Local.antloc b);
  Alcotest.(check bool) "comp" true (bit local Local.comp b)

(* entry → b1 (x := a+b) → b2 (empty) → b3 (y := a+b) → exit *)
let straight_line () =
  let g = Cfg.create () in
  let b1 = Cfg.add_block g ~instrs:[ Instr.Assign ("x", a_plus_b) ] ~term:Cfg.Halt in
  let b2 = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b3 = Cfg.add_block g ~instrs:[ Instr.Assign ("y", a_plus_b) ] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b1);
  Cfg.set_term g b1 (Cfg.Goto b2);
  Cfg.set_term g b2 (Cfg.Goto b3);
  Cfg.set_term g b3 (Cfg.Goto (Cfg.exit_label g));
  (g, b1, b2, b3)

let test_availability () =
  let g, b1, b2, b3 = straight_line () in
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let avail = Avail.compute g local in
  Alcotest.(check bool) "not avin b1" false (Bitvec.get (avail.Avail.avin b1) 0);
  Alcotest.(check bool) "avout b1" true (Bitvec.get (avail.Avail.avout b1) 0);
  Alcotest.(check bool) "avin b2" true (Bitvec.get (avail.Avail.avin b2) 0);
  Alcotest.(check bool) "avin b3" true (Bitvec.get (avail.Avail.avin b3) 0)

let test_anticipatability () =
  let g, b1, b2, b3 = straight_line () in
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let antic = Antic.compute g local in
  Alcotest.(check bool) "antin b1" true (Bitvec.get (antic.Antic.antin b1) 0);
  Alcotest.(check bool) "antin b2 (transparent chain)" true (Bitvec.get (antic.Antic.antin b2) 0);
  Alcotest.(check bool) "antin b3" true (Bitvec.get (antic.Antic.antin b3) 0);
  Alcotest.(check bool) "antout b3" false (Bitvec.get (antic.Antic.antout b3) 0)

(* Availability must-intersect at joins: only one arm computes. *)
let test_avail_join_intersection () =
  let g = Lower.parse_and_lower_func
      "function f(a, b, p) { if (p > 0) { x = a + b; } else { x = 1; } y = a + b; return y; }"
  in
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let avail = Avail.compute g local in
  let pavail = Avail.compute_partial g local in
  let idx = Option.get (Expr_pool.index pool a_plus_b) in
  (* Find the join block: the one whose instrs compute y := a+b. *)
  let join =
    List.find
      (fun l ->
        List.exists
          (fun i -> match i with Instr.Assign ("y", _) -> true | _ -> false)
          (Cfg.instrs g l))
      (Cfg.labels g)
  in
  Alcotest.(check bool) "must-avail false at join" false (Bitvec.get (avail.Avail.avin join) idx);
  Alcotest.(check bool) "may-avail true at join" true (Bitvec.get (pavail.Avail.avin join) idx)

let test_antic_kill_blocks () =
  (* A kill on one path stops must-anticipatability above the branch. *)
  let g =
    Lower.parse_and_lower_func
      "function f(a, b, p) { if (p > 0) { a = 1; x = a + b; } else { y = a + b; } return 0; }"
  in
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let antic = Antic.compute g local in
  let idx = Option.get (Expr_pool.index pool a_plus_b) in
  (* The branch block (contains the condition temp) must not anticipate a+b. *)
  let branch_block =
    List.find
      (fun l -> match Cfg.term g l with Cfg.Branch _ -> true | Cfg.Goto _ | Cfg.Halt -> false)
      (Cfg.labels g)
  in
  Alcotest.(check bool) "not anticipated before branch" false
    (Bitvec.get (antic.Antic.antout branch_block) idx)

let test_liveness () =
  let g =
    Lower.parse_and_lower_func "function f(a, b) { x = a + b; y = x + 1; return y; }"
  in
  let live = Live.compute g in
  (* At function entry, a and b are live (read before written), x/y are not. *)
  let first_real =
    match Cfg.successors g (Cfg.entry g) with
    | [ l ] -> l
    | _ -> Alcotest.fail "entry should have one successor"
  in
  let check_live v expected =
    let idx = Option.get (Var_pool.index live.Live.vars v) in
    Alcotest.(check bool) (v ^ " live at entry") expected (Bitvec.get (live.Live.livein first_real) idx)
  in
  check_live "a" true;
  check_live "b" true;
  check_live "x" false;
  check_live "y" false;
  (* The return variable is live out of the graph. *)
  Alcotest.(check bool) "_ret live at exit" true
    (Bitvec.get
       (live.Live.liveout (Cfg.exit_label g))
       (Option.get (Var_pool.index live.Live.vars Lower.return_var)))

let test_live_blocks_metric () =
  (* x must cross a block boundary to register in the metric. *)
  let g =
    Lower.parse_and_lower_func
      "function f(a) { x = a + 1; if (a > 0) { y = x + 2; } else { y = x + 3; } return y; }"
  in
  let live = Live.compute g in
  Alcotest.(check bool) "x live somewhere" true (Live.live_blocks live g "x" > 0);
  Alcotest.(check int) "unknown var" 0 (Live.live_blocks live g "zz")

let test_solver_counts () =
  let g, _, _, _ = straight_line () in
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let avail = Avail.compute g local in
  (* The worklist engine visits every block of a straight line exactly once
     (no block's meet input changes after its single visit). *)
  Alcotest.(check bool) "sweeps at least 1" true (avail.Avail.sweeps >= 1);
  Alcotest.(check bool) "visits cover blocks" true (avail.Avail.visits >= Cfg.num_blocks g)

let suite =
  [
    Alcotest.test_case "local: compute then kill" `Quick test_local_predicates_kill;
    Alcotest.test_case "local: x := x + 1" `Quick test_local_self_kill;
    Alcotest.test_case "local: kill before compute" `Quick test_local_kill_before;
    Alcotest.test_case "availability straight line" `Quick test_availability;
    Alcotest.test_case "anticipatability straight line" `Quick test_anticipatability;
    Alcotest.test_case "avail join: must vs may" `Quick test_avail_join_intersection;
    Alcotest.test_case "antic stops at kills" `Quick test_antic_kill_blocks;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "live_blocks metric" `Quick test_live_blocks_metric;
    Alcotest.test_case "solver counts" `Quick test_solver_counts;
  ]
