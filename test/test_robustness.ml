(* Degenerate and adversarial inputs: every algorithm must cope. *)

module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Registry = Lcm_eval.Registry
module Oracle = Lcm_eval.Oracle
module Interp = Lcm_eval.Interp
module Prng = Lcm_support.Prng

let all_algorithms_accept ?(inputs = []) name g =
  List.iter
    (fun (e : Registry.entry) ->
      let g' =
        try e.Registry.run g
        with exn ->
          Alcotest.failf "%s/%s raised %s" name e.Registry.name (Printexc.to_string exn)
      in
      match Oracle.semantics ~runs:4 ~inputs (Prng.of_int 3) ~original:g ~transformed:g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s/%s: %s" name e.Registry.name m)
    Registry.all

let test_no_candidates () =
  (* Copies and prints only: the candidate pool is empty (0-bit vectors
     throughout). *)
  let g = Lower.parse_and_lower_func "function f(a) { x = a; print x; return x; }" in
  Alcotest.(check int) "empty pool" 0 (Lcm_ir.Expr_pool.size (Cfg.candidate_pool g));
  all_algorithms_accept ~inputs:[ "a" ] "no-candidates" g

let test_trivial_function () =
  let g = Lower.parse_and_lower_func "function f() { return 0; }" in
  all_algorithms_accept "trivial" g

let test_empty_body () =
  (* Falls off the end: lowering synthesizes return 0. *)
  let g = Lower.parse_and_lower_func "function f() { }" in
  all_algorithms_accept "empty" g

let test_infinite_loop_no_crash () =
  (* The exit is unreachable; analyses must terminate and transformations
     must keep the graph valid (semantic comparison is skipped: neither
     side terminates). *)
  let g = Lower.parse_and_lower_func "function f(a) { s = 0; while (1 > 0) { s = s + a; } return s; }" in
  List.iter
    (fun (e : Registry.entry) ->
      let g' = e.Registry.run g in
      Alcotest.(check (list string)) (e.Registry.name ^ " valid") [] (Lcm_cfg.Validate.check g'))
    Registry.all

let test_same_operand_twice () =
  let g = Lower.parse_and_lower_func "function f(a, p) { if (p > 0) { x = a + a; } y = a + a; return x + y; }" in
  all_algorithms_accept ~inputs:[ "a"; "p" ] "a+a" g

let test_self_referential_updates () =
  let g =
    Lower.parse_and_lower_func
      "function f(a, n) { i = 0; while (i < n) { a = a + a; i = i + 1; } return a; }"
  in
  all_algorithms_accept ~inputs:[ "a"; "n" ] "self-ref" g

let test_branch_both_arms_same_target () =
  let g = Cfg.create () in
  let b =
    Cfg.add_block g
      ~instrs:[ Instr.Assign ("x", Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")) ]
      ~term:Cfg.Halt
  in
  let c = Cfg.add_block g ~instrs:[ Instr.Assign ("y", Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")) ] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  Cfg.set_term g b (Cfg.Branch (Expr.Var "x", c, c));
  Cfg.set_term g c (Cfg.Goto (Cfg.exit_label g));
  all_algorithms_accept ~inputs:[ "a"; "b" ] "degenerate branch" g

let test_deep_nesting () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "function f(a, b) { s = 0; ";
  let depth = 30 in
  for i = 0 to depth - 1 do
    Buffer.add_string buf (Printf.sprintf "if (a > %d) { s = s + (a + b); " i)
  done;
  for _ = 1 to depth do
    Buffer.add_string buf "} "
  done;
  Buffer.add_string buf "return s; }";
  let g = Lower.parse_and_lower_func (Buffer.contents buf) in
  all_algorithms_accept ~inputs:[ "a"; "b" ] "deep nesting" g

let test_wide_pool () =
  (* Hundreds of distinct expressions: exercises multi-word bit vectors in
     every analysis. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "function f(a, b) { s = 0; ";
  for i = 0 to 199 do
    Buffer.add_string buf (Printf.sprintf "s = s + (a + %d); x%d = b * %d; " i i i)
  done;
  Buffer.add_string buf "return s; }";
  let g = Lower.parse_and_lower_func (Buffer.contents buf) in
  Alcotest.(check bool) "wide pool" true (Lcm_ir.Expr_pool.size (Cfg.candidate_pool g) > 300);
  let lcm = (Option.get (Registry.find "lcm-edge")).Registry.run g in
  match Oracle.semantics ~runs:3 ~inputs:[ "a"; "b" ] (Prng.of_int 9) ~original:g ~transformed:lcm with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_interp_overflow_wraps () =
  (* OCaml native ints wrap silently; the interpreter must simply agree
     with itself across transformations. *)
  let g =
    Lower.parse_and_lower_func
      "function f(a) { x = a * a; y = x * x; z = y * y; w = z * z; return w + (a * a); }"
  in
  all_algorithms_accept ~inputs:[ "a" ] "overflow" g

let test_zero_length_bitvec_solver () =
  (* A graph with no candidates still runs every data-flow analysis. *)
  let g = Lower.parse_and_lower_func "function f(a) { x = a; return x; }" in
  let pool = Cfg.candidate_pool g in
  let local = Lcm_dataflow.Local.compute g pool in
  let avail = Lcm_dataflow.Avail.compute g local in
  let antic = Lcm_dataflow.Antic.compute g local in
  Alcotest.(check bool) "converged" true (avail.Lcm_dataflow.Avail.sweeps >= 1 && antic.Lcm_dataflow.Antic.sweeps >= 1)

let test_fuel_zero () =
  let g = Lower.parse_and_lower_func "function f() { return 1; }" in
  let o = Interp.run ~fuel:0 ~pool:(Cfg.candidate_pool g) ~env:[] g in
  Alcotest.(check bool) "did not terminate with zero fuel" false o.Interp.terminated

let suite =
  [
    Alcotest.test_case "no candidate expressions" `Quick test_no_candidates;
    Alcotest.test_case "trivial function" `Quick test_trivial_function;
    Alcotest.test_case "empty body" `Quick test_empty_body;
    Alcotest.test_case "infinite loop" `Quick test_infinite_loop_no_crash;
    Alcotest.test_case "a + a operands" `Quick test_same_operand_twice;
    Alcotest.test_case "self-referential updates" `Quick test_self_referential_updates;
    Alcotest.test_case "branch with equal arms" `Quick test_branch_both_arms_same_target;
    Alcotest.test_case "deeply nested branches" `Quick test_deep_nesting;
    Alcotest.test_case "wide expression pool" `Quick test_wide_pool;
    Alcotest.test_case "overflow wraps consistently" `Quick test_interp_overflow_wraps;
    Alcotest.test_case "zero-length bit vectors" `Quick test_zero_length_bitvec_solver;
    Alcotest.test_case "zero fuel" `Quick test_fuel_zero;
  ]
