(* The textual CFG format: parsing, errors, and round-tripping. *)

module Cfg = Lcm_cfg.Cfg
module Cfg_text = Lcm_cfg.Cfg_text
module Lower = Lcm_cfg.Lower
module Prng = Lcm_support.Prng
module Gencfg = Lcm_eval.Gencfg

let sample =
  {|cfg sample (entry B0, exit B1)
B0:
  goto B2
B1:
  halt
B2:
  x := a + b
  print x
  if p then B2 else B1
|}

let test_parse_sample () =
  let g = Cfg_text.parse sample in
  Alcotest.(check int) "blocks" 3 (Cfg.num_blocks g);
  Alcotest.(check string) "name" "sample" (Cfg.name g);
  Alcotest.(check int) "instrs" 2 (Cfg.num_instrs g);
  Alcotest.(check int) "one candidate" 1 (Cfg.num_candidate_occurrences g)

let test_roundtrip_sample () =
  let g = Cfg_text.parse sample in
  let again = Cfg_text.parse (Cfg.to_string g) in
  Alcotest.(check string) "stable" (Cfg.to_string g) (Cfg.to_string again)

let test_roundtrip_lowered () =
  let g =
    Lower.parse_and_lower_func
      "function f(a, b, n) { s = 0; i = 0; while (i < n) { s = s + (a * b) - (-i); i = i + 1; } \
       print s; return s; }"
  in
  let again = Cfg_text.parse (Cfg.to_string g) in
  Alcotest.(check string) "stable" (Cfg.to_string g) (Cfg.to_string again)

let test_roundtrip_random () =
  (* Random graphs round-trip exactly (their labels are dense). *)
  let rng = Prng.of_int 99 in
  for _ = 1 to 25 do
    let g = Gencfg.random_cfg rng in
    let again = Cfg_text.parse (Cfg.to_string g) in
    Alcotest.(check string) "stable" (Cfg.to_string g) (Cfg.to_string again)
  done

let test_roundtrip_figures () =
  let g = Lcm_figures.Running_example.graph () in
  let again = Cfg_text.parse (Cfg.to_string g) in
  Alcotest.(check string) "stable" (Cfg.to_string g) (Cfg.to_string again)

let test_negative_constants () =
  let g =
    Cfg_text.parse
      "cfg neg (entry B0, exit B1)\nB0:\n  goto B2\nB1:\n  halt\nB2:\n  x := -5\n  y := x + -3\n  goto B1\n"
  in
  let again = Cfg_text.parse (Cfg.to_string g) in
  Alcotest.(check string) "stable" (Cfg.to_string g) (Cfg.to_string again)

let test_errors () =
  let cases =
    [
      "B0:\n  halt\n" (* missing header *);
      "cfg x (entry B0, exit B1)\nB0:\n  goto B1\nB1:\n  halt\nB2:\n  goto B9\n" (* undefined label *);
      "cfg x (entry B0, exit B1)\nB0:\n  goto B1\nB1:\n  halt\nB2:\n  x := a +\n  goto B1\n"
      (* bad expression *);
      "cfg x (entry B0, exit B1)\nB0:\n  goto B1\nB1:\n  halt\nB2:\n" (* no terminator *);
      "cfg x (entry B0, exit B1)\nB2:\n  goto B1\nB0:\n  goto B2\nB1:\n  halt\n" (* order *);
      "cfg x (entry B0, exit B1)\nB0:\n  halt\nB1:\n  halt\n" (* stray halt *);
    ]
  in
  List.iter
    (fun src ->
      match Cfg_text.parse src with
      | _ -> Alcotest.failf "expected a parse error for %S" src
      | exception Cfg_text.Parse_error _ -> ())
    cases

(* ---- the wire-format property: parse ∘ print ≅ id ----

   The server ships graphs as Cfg_text frames (docs/PROTOCOL.md), so
   round-trip fidelity is load-bearing: a graph must survive print → parse
   with the same structure.  [Cfg_text.parse] renumbers labels in order of
   appearance and [Cfg.to_string] prints in allocation order, so the
   isomorphism is the positional map between the two label lists; we check
   it block by block (instructions and terminators) rather than trusting
   the printed strings to agree. *)

let isomorphic g g' =
  let ls = Cfg.labels g and ls' = Cfg.labels g' in
  if List.length ls <> List.length ls' then
    QCheck2.Test.fail_reportf "block count %d <> %d" (List.length ls) (List.length ls');
  let map = Hashtbl.create 16 in
  List.iter2 (fun l l' -> Hashtbl.add map l l') ls ls';
  let m l = Hashtbl.find map l in
  if m (Cfg.entry g) <> Cfg.entry g' then QCheck2.Test.fail_reportf "entry not preserved";
  if m (Cfg.exit_label g) <> Cfg.exit_label g' then QCheck2.Test.fail_reportf "exit not preserved";
  List.iter
    (fun l ->
      if Cfg.instrs g l <> Cfg.instrs g' (m l) then
        QCheck2.Test.fail_reportf "instrs differ at %s" (Lcm_cfg.Label.to_string l);
      let t_ok =
        match (Cfg.term g l, Cfg.term g' (m l)) with
        | Cfg.Goto a, Cfg.Goto a' -> m a = a'
        | Cfg.Branch (c, a, b), Cfg.Branch (c', a', b') -> c = c' && m a = a' && m b = b'
        | Cfg.Halt, Cfg.Halt -> true
        | _ -> false
      in
      if not t_ok then QCheck2.Test.fail_reportf "terminator differs at %s" (Lcm_cfg.Label.to_string l))
    ls;
  true

let prop_roundtrip_iso =
  QCheck2.Test.make ~name:"parse (print g) is graph-isomorphic to g (random CFGs)" ~count:200
    (QCheck2.Gen.int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let params =
        {
          Gencfg.default_cfg_params with
          Gencfg.num_blocks = Prng.int_in rng 2 60;
          branch_bias = Prng.int_in rng 0 100;
          backedge_bias = Prng.int_in rng 0 100;
        }
      in
      let g = Gencfg.random_cfg ~params rng in
      let g' = Cfg_text.parse (Cfg.to_string g) in
      isomorphic g g' && Cfg.to_string g = Cfg.to_string g')

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip_iso;
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "roundtrip sample" `Quick test_roundtrip_sample;
    Alcotest.test_case "roundtrip lowered function" `Quick test_roundtrip_lowered;
    Alcotest.test_case "roundtrip random graphs" `Quick test_roundtrip_random;
    Alcotest.test_case "roundtrip running example" `Quick test_roundtrip_figures;
    Alcotest.test_case "negative constants" `Quick test_negative_constants;
    Alcotest.test_case "parse errors" `Quick test_errors;
  ]
