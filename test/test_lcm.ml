(* The edge-based algorithms on hand-analyzed graphs: golden insert/delete/
   copy sets, plus behavioural checks on every named workload. *)

module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Lcm_edge = Lcm_core.Lcm_edge
module Bcm_edge = Lcm_core.Bcm_edge
module Suites = Lcm_eval.Suites
module Oracle = Lcm_eval.Oracle
module Registry = Lcm_eval.Registry
module Prng = Lcm_support.Prng

let edge_list insert = List.map fst insert
let block_list delete = List.map fst delete

let find_block g pred = List.find (fun l -> pred (Cfg.instrs g l)) (Cfg.labels g)

let assigns v instrs =
  List.exists (fun i -> Lcm_ir.Instr.defs i = Some v) instrs

(* Diamond: one arm computes a+b, the join recomputes it.  LCM must insert
   exactly on the non-computing arm's outgoing edge, delete the join's
   computation, and seed the temp in the computing arm. *)
let test_diamond_golden () =
  let g = Suites.graph (Option.get (Suites.find "diamond")) in
  let a = Lcm_edge.analyze g in
  let computes_a_plus_b instrs =
    List.exists
      (fun i ->
        match Lcm_ir.Instr.candidate i with
        | Some (Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")) -> true
        | Some _ | None -> false)
      instrs
  in
  let arm_comp = find_block g (fun is -> assigns "x" is && computes_a_plus_b is) in
  let join = find_block g (assigns "y") in
  (* the non-computing arm is the one predecessor of the join that is not
     the computing arm *)
  let other = List.find (fun p -> p <> arm_comp) (Cfg.predecessors g join) in
  Alcotest.(check (list (pair int int))) "insert" [ (other, join) ] (edge_list a.Lcm_edge.insert);
  Alcotest.(check (list int)) "delete" [ join ] (block_list a.Lcm_edge.delete);
  Alcotest.(check (list int)) "copy" [ arm_comp ] (block_list a.Lcm_edge.copy)

(* Straight-line full redundancy: no insertion, deletion at the reuse. *)
let test_straight_line_golden () =
  let g = Lower.parse_and_lower_func "function f(a, b) { x = a + b; y = a + b; return x + y; }" in
  let g, _ = Lcm_opt.Lcse.run g in
  let a = Lcm_edge.analyze g in
  Alcotest.(check (list (pair int int))) "no inserts" [] (edge_list a.Lcm_edge.insert);
  (* After LCSE the second occurrence is already a copy; nothing to delete
     globally in a single block. *)
  Alcotest.(check (list int)) "no deletes" [] (block_list a.Lcm_edge.delete)

(* The while-loop with a use after the loop: the invariant is down-safe at
   the header, so LCM hoists it above the loop entirely. *)
let test_while_loop_with_exit_use () =
  let w = Option.get (Suites.find "loop_with_exit_use") in
  let g = Suites.graph w in
  let a = Lcm_edge.analyze g in
  Alcotest.(check int) "exactly one insertion point" 1 (List.length a.Lcm_edge.insert);
  Alcotest.(check int) "both occurrences deleted" 2 (List.length a.Lcm_edge.delete);
  (* Dynamic gain: evaluations drop from n+1 to 1 per run. *)
  let pool = Cfg.candidate_pool g in
  let g', _ = Lcm_edge.transform g in
  let n = 6 in
  let env = [ ("a", 2); ("b", 3); ("n", n) ] in
  let orig = Lcm_eval.Interp.run ~pool ~env g in
  let opt = Lcm_eval.Interp.run ~pool ~env g' in
  Alcotest.(check bool) "same result" true (Lcm_eval.Interp.same_behaviour orig opt);
  (* a*b evaluated n+1 times originally; once afterwards. *)
  let mul_idx =
    Option.get (Lcm_ir.Expr_pool.index pool (Expr.Binary (Expr.Mul, Expr.Var "a", Expr.Var "b")))
  in
  Alcotest.(check int) "original evals" (n + 1) orig.Lcm_eval.Interp.eval_counts.(mul_idx);
  Alcotest.(check int) "optimized evals" 1 opt.Lcm_eval.Interp.eval_counts.(mul_idx)

(* A plain while-loop invariant is NOT down-safe at the pre-header (the
   loop may run zero times), so classic PRE must leave one evaluation per
   iteration — motion happens only to the loop-entry edge, gaining
   nothing.  This is the known while-vs-repeat contrast from the paper. *)
let test_while_loop_invariant_not_hoisted () =
  let w = Option.get (Suites.find "loop_invariant") in
  let g = Suites.graph w in
  let pool = Cfg.candidate_pool g in
  let g', _ = Lcm_edge.transform g in
  let env = [ ("a", 2); ("b", 3); ("n", 5) ] in
  let mul_idx =
    Option.get (Lcm_ir.Expr_pool.index pool (Expr.Binary (Expr.Mul, Expr.Var "a", Expr.Var "b")))
  in
  let orig = Lcm_eval.Interp.run ~pool ~env g in
  let opt = Lcm_eval.Interp.run ~pool ~env g' in
  Alcotest.(check int) "still one eval per iteration" orig.Lcm_eval.Interp.eval_counts.(mul_idx)
    opt.Lcm_eval.Interp.eval_counts.(mul_idx)

(* In a do-while loop the body executes at least once, so the invariant IS
   down-safe before the loop and LCM hoists it. *)
let test_do_while_invariant_hoisted () =
  let w = Option.get (Suites.find "do_while_invariant") in
  let g = Suites.graph w in
  let pool = Cfg.candidate_pool g in
  let g', _ = Lcm_edge.transform g in
  let env = [ ("a", 2); ("b", 3); ("n", 5) ] in
  let mul_idx =
    Option.get (Lcm_ir.Expr_pool.index pool (Expr.Binary (Expr.Mul, Expr.Var "a", Expr.Var "b")))
  in
  let orig = Lcm_eval.Interp.run ~pool ~env g in
  let opt = Lcm_eval.Interp.run ~pool ~env g' in
  Alcotest.(check bool) "same behaviour" true (Lcm_eval.Interp.same_behaviour orig opt);
  Alcotest.(check int) "original: n evals" 5 orig.Lcm_eval.Interp.eval_counts.(mul_idx);
  Alcotest.(check int) "hoisted: 1 eval" 1 opt.Lcm_eval.Interp.eval_counts.(mul_idx)

(* Guarded invariant: LCM must NOT touch it (insertion would be unsafe). *)
let test_guarded_invariant_untouched () =
  let w = Option.get (Suites.find "guarded_invariant") in
  let g = Suites.graph w in
  let a = Lcm_edge.analyze g in
  Alcotest.(check (list (pair int int))) "no inserts" [] (edge_list a.Lcm_edge.insert);
  Alcotest.(check (list int)) "no deletes" [] (block_list a.Lcm_edge.delete)

(* BCM and LCM are both computationally optimal: equal per-path counts. *)
let test_bcm_lcm_equal_counts () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let bcm, _ = Bcm_edge.transform g in
      let lcm, _ = Lcm_edge.transform g in
      (match Oracle.computations_leq ~pool lcm bcm with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: lcm > bcm: %s" w.Suites.name m);
      match Oracle.computations_leq ~pool bcm lcm with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: bcm > lcm: %s" w.Suites.name m)
    Suites.all

(* Every workload: LCM-edge preserves semantics, is safe, reads no
   undefined temps. *)
let test_all_workloads_lcm_edge () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let g', _ = Lcm_edge.transform g in
      (match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 11) ~original:g ~transformed:g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: semantics: %s" w.Suites.name m);
      (match Oracle.safety ~pool ~original:g g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: safety: %s" w.Suites.name m);
      match Oracle.no_undefined_temp_reads ~inputs:w.Suites.inputs ~original:g g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: temp reads: %s" w.Suites.name m)
    Suites.all

(* LCM never loses to GCSE or the original on any path. *)
let test_lcm_dominates_weaker () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let lcm, _ = Lcm_edge.transform g in
      let gcse = (Option.get (Registry.find "gcse")).Registry.run g in
      (match Oracle.computations_leq ~pool lcm g with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: lcm vs original: %s" w.Suites.name m);
      match Oracle.computations_leq ~pool lcm gcse with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: lcm vs gcse: %s" w.Suites.name m)
    Suites.all

(* The block-placement realization (TOPLAS form): identical per-path
   counts, no transformation-time edge splitting. *)
let test_block_realization () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let edge, _ = Lcm_edge.transform g in
      let block, report = Lcm_core.Lcm_block.transform g in
      Alcotest.(check int)
        (w.Suites.name ^ ": no edge insertions")
        0 report.Lcm_core.Transform.num_edge_insertions;
      (match Oracle.computations_leq ~pool block edge with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: block > edge: %s" w.Suites.name m);
      (match Oracle.computations_leq ~pool edge block with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: edge > block: %s" w.Suites.name m);
      match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 61) ~original:g ~transformed:block with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: semantics: %s" w.Suites.name m)
    Suites.all;
  (* On the critical-edge example the pre-split block realization still
     finds the optimal placement. *)
  let g = Lcm_figures.Critical_edge.graph () in
  let a = Lcm_core.Lcm_block.analyze g in
  Alcotest.(check int) "one edge pre-split" 1 a.Lcm_core.Lcm_block.edges_pre_split;
  Alcotest.(check bool) "some placement found" true
    (a.Lcm_core.Lcm_block.entry_inserts <> [] || a.Lcm_core.Lcm_block.exit_inserts <> [])

let suite =
  [
    Alcotest.test_case "diamond golden sets" `Quick test_diamond_golden;
    Alcotest.test_case "block realization = edge realization" `Quick test_block_realization;
    Alcotest.test_case "straight line after LCSE" `Quick test_straight_line_golden;
    Alcotest.test_case "while loop with exit use: hoisted" `Quick test_while_loop_with_exit_use;
    Alcotest.test_case "while loop invariant: not hoisted (safety)" `Quick test_while_loop_invariant_not_hoisted;
    Alcotest.test_case "do-while invariant: hoisted" `Quick test_do_while_invariant_hoisted;
    Alcotest.test_case "guarded invariant: untouched" `Quick test_guarded_invariant_untouched;
    Alcotest.test_case "BCM = LCM on per-path counts" `Quick test_bcm_lcm_equal_counts;
    Alcotest.test_case "all workloads: LCM-edge sound" `Quick test_all_workloads_lcm_edge;
    Alcotest.test_case "LCM dominates GCSE and original" `Quick test_lcm_dominates_weaker;
  ]
