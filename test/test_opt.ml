(* The cleanup passes and the strength-reduction extension. *)

module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Copy_prop = Lcm_opt.Copy_prop
module Dce = Lcm_opt.Dce
module Const_fold = Lcm_opt.Const_fold
module Cleanup = Lcm_opt.Cleanup
module Strength_reduction = Lcm_opt.Strength_reduction
module Oracle = Lcm_eval.Oracle
module Interp = Lcm_eval.Interp
module Suites = Lcm_eval.Suites
module Prng = Lcm_support.Prng

let lower = Lower.parse_and_lower_func

let has_instr g pred =
  List.exists (fun l -> List.exists pred (Cfg.instrs g l)) (Cfg.labels g)

(* ---- copy propagation ---- *)

let test_copy_prop_straight_line () =
  let g = lower "function f(a) { t = a; x = t + 1; return x; }" in
  let g', stats = Copy_prop.run g in
  Alcotest.(check bool) "rewrote a use" true (stats.Copy_prop.uses_rewritten >= 1);
  Alcotest.(check bool) "t + 1 became a + 1" true
    (has_instr g' (fun i ->
         match i with
         | Instr.Assign ("x", Expr.Binary (Expr.Add, Expr.Var "a", Expr.Const 1)) -> true
         | _ -> false))

let test_copy_prop_chain () =
  let g = lower "function f(a) { t = a; u = t; v = u; return v + 1; }" in
  let g', _ = Copy_prop.run g in
  (* v + 1 must read a directly (transitive resolution). *)
  Alcotest.(check bool) "chain resolved to a" true
    (has_instr g' (fun i ->
         match i with
         | Instr.Assign (_, Expr.Binary (Expr.Add, Expr.Var "a", Expr.Const 1)) -> true
         | _ -> false))

let test_copy_prop_respects_kills () =
  let g = lower "function f(a) { t = a; a = 5; x = t + 1; return x; }" in
  let g', _ = Copy_prop.run g in
  (* t's source was clobbered: x must still read t. *)
  Alcotest.(check bool) "t + 1 untouched" true
    (has_instr g' (fun i ->
         match i with
         | Instr.Assign ("x", Expr.Binary (Expr.Add, Expr.Var "t", Expr.Const 1)) -> true
         | _ -> false))

let test_copy_prop_join_must () =
  (* Copies arriving from only one branch arm must not propagate. *)
  let g = lower "function f(a, b, p) { if (p > 0) { t = a; } else { t = b; } return t + 1; }" in
  let g', _ = Copy_prop.run g in
  Alcotest.(check bool) "t survives the join" true
    (has_instr g' (fun i ->
         match i with
         | Instr.Assign (_, Expr.Binary (Expr.Add, Expr.Var "t", Expr.Const 1)) -> true
         | _ -> false))

let test_copy_prop_semantics () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let g', _ = Copy_prop.run g in
      match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 41) ~original:g ~transformed:g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" w.Suites.name m)
    Suites.all

(* ---- dead code elimination ---- *)

let test_dce_removes_dead () =
  let g = lower "function f(a) { dead = a * 2; x = a + 1; return x; }" in
  let g', stats = Dce.run g in
  Alcotest.(check bool) "removed" true (stats.Dce.instrs_removed >= 1);
  Alcotest.(check bool) "dead gone" false
    (has_instr g' (fun i -> Instr.defs i = Some "dead"))

let test_dce_cascades () =
  let g = lower "function f(a) { t = a + 1; u = t + 1; return a; }" in
  let g', stats = Dce.run g in
  Alcotest.(check bool) "both removed" true (stats.Dce.instrs_removed >= 2);
  Alcotest.(check bool) "multiple rounds or one sweep" true (stats.Dce.rounds >= 1);
  Alcotest.(check bool) "t gone" false (has_instr g' (fun i -> Instr.defs i = Some "t"))

let test_dce_keeps_prints_and_branches () =
  let g = lower "function f(a) { c = a > 0; if (c > 0) { print a; } return 0; }" in
  let g', _ = Dce.run g in
  Alcotest.(check bool) "print kept" true
    (has_instr g' (fun i -> match i with Instr.Print _ -> true | _ -> false));
  (* The branch condition chain must survive. *)
  let sem = Oracle.semantics ~inputs:[ "a" ] (Prng.of_int 2) ~original:g ~transformed:g' in
  Alcotest.(check bool) "semantics kept" true (Result.is_ok sem)

let test_dce_keep_parameter () =
  let g = lower "function f(a) { t = a + 1; return 0; }" in
  let g', _ = Dce.run ~keep:[ "t" ] g in
  Alcotest.(check bool) "explicitly kept" true (has_instr g' (fun i -> Instr.defs i = Some "t"))

(* ---- constant folding ---- *)

let test_const_fold_exprs () =
  let g = lower "function f() { x = 2 + 3; y = 4 * 5; return x + y; }" in
  let g', stats = Const_fold.run g in
  Alcotest.(check int) "two folds" 2 stats.Const_fold.exprs_folded;
  Alcotest.(check bool) "x := 5" true
    (has_instr g' (fun i -> match i with Instr.Assign ("x", Expr.Atom (Expr.Const 5)) -> true | _ -> false))

let test_const_fold_total_semantics () =
  let g = lower "function f() { x = 7 / 0; y = 7 % 0; return x + y; }" in
  let g', _ = Const_fold.run g in
  let pool = Cfg.candidate_pool g in
  let o = Interp.run ~pool ~env:[] g' in
  Alcotest.(check (option int)) "total division semantics" (Some 0) o.Interp.return_value

let test_const_fold_branch () =
  let g = Cfg.create () in
  let dead = Cfg.add_block g ~instrs:[ Instr.Assign ("x", Expr.Atom (Expr.Const 1)) ] ~term:Cfg.Halt in
  let live = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let top = Cfg.add_block g ~instrs:[] ~term:(Cfg.Branch (Expr.Const 0, dead, live)) in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto top);
  Cfg.set_term g dead (Cfg.Goto (Cfg.exit_label g));
  Cfg.set_term g live (Cfg.Goto (Cfg.exit_label g));
  let g', stats = Const_fold.run g in
  Alcotest.(check int) "branch resolved" 1 stats.Const_fold.branches_resolved;
  Alcotest.(check bool) "dead arm dropped" false (Cfg.mem g' dead)

(* ---- the cleanup pipeline ---- *)

let test_cleanup_after_lcm () =
  (* LCM introduces h plus copies; cleanup must shrink the program while
     preserving semantics and never adding candidate evaluations. *)
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let lcm, _ = Lcm_core.Lcm_edge.transform g in
      let cleaned, _ = Cleanup.run lcm in
      (match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 43) ~original:g ~transformed:cleaned with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: semantics: %s" w.Suites.name m);
      let pool = Cfg.candidate_pool g in
      match Oracle.computations_leq ~pool cleaned g with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: counts: %s" w.Suites.name m)
    Suites.all

let test_cleanup_closes_value_gap () =
  (* Lexical PRE cannot see that z+w repeats x+y when z,w are copies of
     x,y; copy propagation + local value numbering in the cleanup close
     exactly that gap (cse_chain drops from 5 to 4 candidate evals). *)
  let w = Option.get (Suites.find "cse_chain") in
  let g = Suites.graph w in
  let pool = Cfg.candidate_pool g in
  let env = List.map (fun v -> (v, 2)) w.Suites.inputs in
  let evals h = Interp.total_evals (Interp.run ~pool ~env h) in
  let lcm = (Option.get (Lcm_eval.Registry.find "lcm-edge")).Lcm_eval.Registry.run g in
  let cleaned = (Option.get (Lcm_eval.Registry.find "lcm-cleanup")).Lcm_eval.Registry.run g in
  Alcotest.(check bool) "cleanup strictly better here" true (evals cleaned < evals lcm);
  match
    Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 51) ~original:g ~transformed:cleaned
  with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_cleanup_shrinks_quickstart () =
  let g = lower "function f(a, b, p) { if (p > 0) { x = a + b; } else { x = 1; } y = a + b; return x + y; }" in
  let lcm, _ = Lcm_core.Lcm_edge.transform g in
  let cleaned, stats = Cleanup.run lcm in
  Alcotest.(check bool) "did something" true
    (stats.Cleanup.copies_propagated + stats.Cleanup.instrs_removed > 0);
  Alcotest.(check bool) "no more instrs than lcm output" true
    (Cfg.num_instrs cleaned <= Cfg.num_instrs lcm)

(* ---- strength reduction ---- *)

let sr_source =
  {|
function sr(a, n) {
  s = 0;
  i = 0;
  while (i < n) {
    t = i * 3;
    s = s + t;
    i = i + 1;
  }
  return s;
}
|}

let test_sr_reduces_mul () =
  let g = lower sr_source in
  let g', stats = Strength_reduction.run g in
  Alcotest.(check int) "one IV" 1 stats.Strength_reduction.induction_variables;
  Alcotest.(check int) "one pair" 1 stats.Strength_reduction.pairs_reduced;
  Alcotest.(check bool) "occurrence rewritten" true (stats.Strength_reduction.occurrences_rewritten >= 1);
  (* Dynamically: i*3 evaluated once (pre-header) instead of n times. *)
  let pool = Cfg.candidate_pool g in
  let idx = Option.get (Lcm_ir.Expr_pool.index pool (Expr.Binary (Expr.Mul, Expr.Var "i", Expr.Const 3))) in
  let env = [ ("a", 0); ("n", 9) ] in
  let before = Interp.run ~pool ~env g in
  let after = Interp.run ~pool ~env g' in
  Alcotest.(check bool) "same behaviour" true (Interp.same_behaviour before after);
  Alcotest.(check int) "orig 9 muls" 9 before.Interp.eval_counts.(idx);
  Alcotest.(check int) "reduced to 1 mul" 1 after.Interp.eval_counts.(idx)

let test_sr_variable_multiplier_unit_step () =
  let g = lower
      "function f(a, n) { s = 0; i = 0; while (i < n) { s = s + (i * a); i = i + 1; } return s; }"
  in
  let g', stats = Strength_reduction.run g in
  Alcotest.(check int) "pair reduced" 1 stats.Strength_reduction.pairs_reduced;
  let sem = Oracle.semantics ~inputs:[ "a"; "n" ] (Prng.of_int 4) ~original:g ~transformed:g' in
  Alcotest.(check bool) "semantics" true (Result.is_ok sem)

let test_sr_negative_step () =
  let g = lower
      "function f(n) { s = 0; i = n; while (i > 0) { s = s + (i * 4); i = i - 1; } return s; }"
  in
  let g', stats = Strength_reduction.run g in
  Alcotest.(check int) "pair reduced" 1 stats.Strength_reduction.pairs_reduced;
  let sem = Oracle.semantics ~inputs:[ "n" ] (Prng.of_int 5) ~original:g ~transformed:g' in
  Alcotest.(check bool) "semantics" true (Result.is_ok sem)

let test_sr_skips_non_ivs () =
  (* i is redefined twice: not a basic induction variable. *)
  let g = lower
      "function f(n) { s = 0; i = 0; while (i < n) { s = s + (i * 3); i = i + 1; i = i + 1; } return s; }"
  in
  let _, stats = Strength_reduction.run g in
  Alcotest.(check int) "nothing reduced" 0 stats.Strength_reduction.pairs_reduced

let test_sr_skips_variant_multiplier () =
  (* The multiplier s changes inside the loop. *)
  let g = lower
      "function f(n) { s = 1; i = 0; while (i < n) { s = s + (i * s); i = i + 1; } return s; }"
  in
  let _, stats = Strength_reduction.run g in
  Alcotest.(check int) "nothing reduced" 0 stats.Strength_reduction.pairs_reduced

let test_sr_semantics_on_workloads () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let g', _ = Strength_reduction.run g in
      match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 47) ~original:g ~transformed:g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" w.Suites.name m)
    Suites.all

let suite =
  [
    Alcotest.test_case "copy-prop: straight line" `Quick test_copy_prop_straight_line;
    Alcotest.test_case "copy-prop: transitive chain" `Quick test_copy_prop_chain;
    Alcotest.test_case "copy-prop: respects kills" `Quick test_copy_prop_respects_kills;
    Alcotest.test_case "copy-prop: must-join" `Quick test_copy_prop_join_must;
    Alcotest.test_case "copy-prop: semantics on workloads" `Quick test_copy_prop_semantics;
    Alcotest.test_case "dce: removes dead assignment" `Quick test_dce_removes_dead;
    Alcotest.test_case "dce: cascades" `Quick test_dce_cascades;
    Alcotest.test_case "dce: keeps prints and branches" `Quick test_dce_keeps_prints_and_branches;
    Alcotest.test_case "dce: keep parameter" `Quick test_dce_keep_parameter;
    Alcotest.test_case "const-fold: expressions" `Quick test_const_fold_exprs;
    Alcotest.test_case "const-fold: total division" `Quick test_const_fold_total_semantics;
    Alcotest.test_case "const-fold: constant branch" `Quick test_const_fold_branch;
    Alcotest.test_case "cleanup after LCM" `Quick test_cleanup_after_lcm;
    Alcotest.test_case "cleanup closes the value-redundancy gap" `Quick test_cleanup_closes_value_gap;
    Alcotest.test_case "cleanup shrinks the quickstart" `Quick test_cleanup_shrinks_quickstart;
    Alcotest.test_case "strength reduction: i*3" `Quick test_sr_reduces_mul;
    Alcotest.test_case "strength reduction: variable multiplier" `Quick test_sr_variable_multiplier_unit_step;
    Alcotest.test_case "strength reduction: negative step" `Quick test_sr_negative_step;
    Alcotest.test_case "strength reduction: skips non-IVs" `Quick test_sr_skips_non_ivs;
    Alcotest.test_case "strength reduction: skips variant multiplier" `Quick test_sr_skips_variant_multiplier;
    Alcotest.test_case "strength reduction: semantics on workloads" `Quick test_sr_semantics_on_workloads;
  ]
