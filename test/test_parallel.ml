(* Equivalence of the parallel paths with the sequential engines — the
   determinism contract of the multicore engine, as properties:

   - Solver.run_par ≡ Worklist ≡ Sweep, bit for bit, on random CFGs, for
     all four problem shapes (forward/backward × union/inter), with random
     monotone gen/kill transfers, random boundaries, and widths straddling
     word boundaries — with the slice threshold forced low so the parallel
     path actually slices;
   - Lcm_edge/Bcm_edge.analyze ~workers ≡ analyze: identical insert and
     delete decisions;
   - Corpus.process ~workers ≡ sequential process: identical reports,
     including the transformed-graph digests, at several pool widths. *)

module Bitvec = Lcm_support.Bitvec
module Pool = Lcm_support.Pool
module Prng = Lcm_support.Prng
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Solver = Lcm_dataflow.Solver
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Local = Lcm_dataflow.Local
module Lcm_edge = Lcm_core.Lcm_edge
module Bcm_edge = Lcm_core.Bcm_edge
module Gencfg = Lcm_eval.Gencfg
module Corpus = Lcm_eval.Corpus

let seed_gen = QCheck2.Gen.int_bound 1_000_000

(* Shared 4-domain pool for the whole suite (created lazily so a filtered
   run doesn't spawn domains, shut down at exit). *)
let pool =
  let p = lazy (Pool.create 4) in
  at_exit (fun () -> if Lazy.is_val p then Pool.shutdown (Lazy.force p));
  fun () -> Lazy.force p

let random_vec rng nbits ~den =
  let v = Bitvec.create nbits in
  for i = 0 to nbits - 1 do
    if Prng.chance rng ~num:1 ~den then Bitvec.set v i true
  done;
  v

(* run_par ≡ run, with the gen/kill tables sliced the same way the
   production analyses slice their local predicates. *)
let prop_run_par_equals_sequential =
  QCheck2.Test.make ~name:"run_par ≡ Worklist ≡ Sweep (4 shapes, sliced, random boundary)"
    ~count:60 seed_gen (fun seed ->
      let rng = Prng.of_int (seed + 31337) in
      let num_blocks = Prng.int_in rng 3 40 in
      let g = Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks } rng in
      (* Straddle one and two word boundaries across cases. *)
      let nbits = Prng.choose_list rng [ 62; 63; 64; 65; 127; 128; 129 ] in
      let bound = Cfg.label_bound g in
      let table =
        Array.init bound (fun _ -> (random_vec rng nbits ~den:4, random_vec rng nbits ~den:4))
      in
      let boundary = random_vec rng nbits ~den:3 in
      let transfer_of ~lo ~len l ~src ~dst =
        let gen, kill = table.(l) in
        ignore (Bitvec.blit ~src ~dst);
        ignore (Bitvec.diff_into ~into:dst (Bitvec.slice kill ~lo ~len));
        ignore (Bitvec.union_into ~into:dst (Bitvec.slice gen ~lo ~len))
      in
      List.for_all
        (fun direction ->
          List.for_all
            (fun confluence ->
              let spec_of ~lo ~len =
                {
                  Solver.nbits = len;
                  direction;
                  confluence;
                  boundary = Bitvec.slice boundary ~lo ~len;
                  transfer = transfer_of ~lo ~len;
                }
              in
              let full = spec_of ~lo:0 ~len:nbits in
              (* threshold 1 bit/domain: force real slicing even at 62
                 bits. *)
              let p = Solver.run_par ~pool:(pool ()) ~threshold:1 g full ~slice:spec_of in
              let w = Solver.run ~engine:Solver.Worklist g full in
              let s = Solver.run ~engine:Solver.Sweep g full in
              List.for_all
                (fun l ->
                  let same f g l = Bitvec.equal (f l) (g l) in
                  same p.Solver.block_in w.Solver.block_in l
                  && same p.Solver.block_in s.Solver.block_in l
                  && same p.Solver.block_out w.Solver.block_out l
                  && same p.Solver.block_out s.Solver.block_out l
                  || QCheck2.Test.fail_reportf "mismatch at B%d (nbits=%d)" l nbits)
                (Cfg.labels g))
            [ Solver.Union; Solver.Inter ])
        [ Solver.Forward; Solver.Backward ])

(* The production slice builders (Avail/Antic.compute_par) against their
   sequential twins, on real candidate pools. *)
let prop_safety_systems_par =
  QCheck2.Test.make ~name:"Avail/Antic.compute_par ≡ compute" ~count:60 seed_gen (fun seed ->
      let rng = Prng.of_int (seed + 99991) in
      let num_blocks = Prng.int_in rng 3 40 in
      let g = Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks } rng in
      let local = Local.compute g (Cfg.candidate_pool g) in
      let av = Avail.compute g local and av_p = Avail.compute_par ~pool:(pool ()) ~threshold:1 g local in
      let an = Antic.compute g local and an_p = Antic.compute_par ~pool:(pool ()) ~threshold:1 g local in
      List.for_all
        (fun l ->
          Bitvec.equal (av.Avail.avin l) (av_p.Avail.avin l)
          && Bitvec.equal (av.Avail.avout l) (av_p.Avail.avout l)
          && Bitvec.equal (an.Antic.antin l) (an_p.Antic.antin l)
          && Bitvec.equal (an.Antic.antout l) (an_p.Antic.antout l)
          || QCheck2.Test.fail_reportf "safety system mismatch at B%d" l)
        (Cfg.labels g))

let same_decisions name (insert, delete) (insert', delete') =
  let edge_str (p, b) = Printf.sprintf "B%d->B%d" p b in
  List.length insert = List.length insert'
  && List.length delete = List.length delete'
  && List.for_all2
       (fun (e, v) (e', v') -> e = e' && Bitvec.equal v v')
       insert insert'
  && List.for_all2 (fun (b, v) (b', v') -> Label.equal b b' && Bitvec.equal v v') delete delete'
  ||
  QCheck2.Test.fail_reportf "%s: decisions differ (%s vs %s)" name
    (String.concat "," (List.map (fun (e, _) -> edge_str e) insert))
    (String.concat "," (List.map (fun (e, _) -> edge_str e) insert'))

let prop_lcm_workers =
  QCheck2.Test.make ~name:"Lcm_edge/Bcm_edge.analyze ~workers ≡ analyze" ~count:60 seed_gen
    (fun seed ->
      let rng = Prng.of_int (seed + 424243) in
      let num_blocks = Prng.int_in rng 3 30 in
      let g = Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks } rng in
      let a = Lcm_edge.analyze g in
      let a' = Lcm_edge.analyze ~workers:(pool ()) g in
      let b = Bcm_edge.analyze g in
      let b' = Bcm_edge.analyze ~workers:(pool ()) g in
      same_decisions "lcm" (a.Lcm_edge.insert, a.Lcm_edge.delete)
        (a'.Lcm_edge.insert, a'.Lcm_edge.delete)
      && same_decisions "bcm" (b.Bcm_edge.insert, b.Bcm_edge.delete)
           (b'.Bcm_edge.insert, b'.Bcm_edge.delete))

(* Corpus fan-out: reports (order, counters, digests) identical to the
   sequential map at several pool widths, including the degenerate 1. *)
let test_corpus_deterministic () =
  let jobs = Corpus.generate [ (20, 6); (40, 3) ] in
  let reference = Corpus.process jobs in
  Alcotest.(check int) "job count" 9 (List.length reference);
  List.iter
    (fun domains ->
      let p = Pool.create domains in
      let got = Corpus.process ~workers:p jobs in
      Pool.shutdown p;
      Alcotest.(check bool)
        (Printf.sprintf "reports identical at %d domains" domains)
        true (got = reference))
    [ 1; 2; 4 ];
  (* And against the shared suite pool, twice (cache-warm second run). *)
  Alcotest.(check bool) "suite pool run 1" true (Corpus.process ~workers:(pool ()) jobs = reference);
  Alcotest.(check bool) "suite pool run 2" true (Corpus.process ~workers:(pool ()) jobs = reference)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_run_par_equals_sequential;
    QCheck_alcotest.to_alcotest prop_safety_systems_par;
    QCheck_alcotest.to_alcotest prop_lcm_workers;
    Alcotest.test_case "corpus fan-out is deterministic" `Quick test_corpus_deterministic;
  ]
