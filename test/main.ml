(* Test entry point: one alcotest run across every suite. *)

let () =
  Alcotest.run "lcm"
    [
      ("bitvec", Test_bitvec.suite);
      ("prng", Test_prng.suite);
      ("expr", Test_expr.suite);
      ("parser", Test_parser.suite);
      ("cfg", Test_cfg.suite);
      ("graph-algos", Test_graph_algos.suite);
      ("cfg-text", Test_cfg_text.suite);
      ("dataflow", Test_dataflow.suite);
      ("solver", Test_solver.suite);
      ("transform", Test_transform.suite);
      ("lcm-edge", Test_lcm.suite);
      ("lcm-node", Test_lcm_node.suite);
      ("baselines", Test_baselines.suite);
      ("interp", Test_interp.suite);
      ("figures", Test_figures.suite);
      ("opt", Test_opt.suite);
      ("oracle", Test_oracle.suite);
      ("ssa", Test_ssa.suite);
      ("robustness", Test_robustness.suite);
      ("misc", Test_misc.suite);
      ("placement-check", Test_placement_check.suite);
      ("properties", Test_properties.suite);
      ("obs", Test_obs.suite);
      ("pool", Test_pool.suite);
      ("arena", Test_arena.suite);
      ("parallel", Test_parallel.suite);
      ("frontend", Test_frontend.suite);
      ("server", Test_server.suite);
      ("shard", Test_shard.suite);
      ("journal", Test_journal.suite);
      ("chaos", Test_chaos.suite);
    ]
