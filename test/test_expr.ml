(* Expressions, pools and instructions. *)

module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Instr = Lcm_ir.Instr

let a = Expr.Var "a"
let b = Expr.Var "b"
let add x y = Expr.Binary (Expr.Add, x, y)
let sub x y = Expr.Binary (Expr.Sub, x, y)

let test_canonical_commutative () =
  Alcotest.(check bool) "a+b = canon(b+a)" true (Expr.equal (Expr.canonical (add b a)) (add a b));
  Alcotest.(check bool) "a-b stays" true (Expr.equal (Expr.canonical (sub b a)) (sub b a));
  Alcotest.(check bool) "const and var order" true
    (Expr.equal (Expr.canonical (add a (Expr.Const 1))) (Expr.canonical (add (Expr.Const 1) a)))

let test_vars () =
  Alcotest.(check (list string)) "binary" [ "a"; "b" ] (Expr.vars (add a b));
  Alcotest.(check (list string)) "unary" [ "a" ] (Expr.vars (Expr.Unary (Expr.Neg, a)));
  Alcotest.(check (list string)) "consts" [] (Expr.vars (add (Expr.Const 1) (Expr.Const 2)))

let test_reads_var () =
  Alcotest.(check bool) "reads a" true (Expr.reads_var (add a b) "a");
  Alcotest.(check bool) "not c" false (Expr.reads_var (add a b) "c")

let test_is_candidate () =
  Alcotest.(check bool) "binary yes" true (Expr.is_candidate (add a b));
  Alcotest.(check bool) "unary yes" true (Expr.is_candidate (Expr.Unary (Expr.Not, a)));
  Alcotest.(check bool) "atom no" false (Expr.is_candidate (Expr.Atom a))

let test_pp () =
  Alcotest.(check string) "binary" "a + b" (Expr.to_string (add a b));
  Alcotest.(check string) "unary" "-a" (Expr.to_string (Expr.Unary (Expr.Neg, a)));
  Alcotest.(check string) "atom" "42" (Expr.to_string (Expr.Atom (Expr.Const 42)))

let test_pool_dedup () =
  let pool = Expr_pool.create () in
  let i1 = Expr_pool.add pool (add a b) in
  let i2 = Expr_pool.add pool (add b a) in
  let i3 = Expr_pool.add pool (sub a b) in
  Alcotest.(check int) "commutative dedup" i1 i2;
  Alcotest.(check bool) "distinct" true (i1 <> i3);
  Alcotest.(check int) "size" 2 (Expr_pool.size pool);
  Alcotest.(check bool) "expr roundtrip" true (Expr.equal (Expr_pool.expr pool i1) (add a b))

let test_pool_rejects_atoms () =
  let pool = Expr_pool.create () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Expr_pool.add pool (Expr.Atom a));
       false
     with Invalid_argument _ -> true)

let test_pool_reading () =
  let pool = Expr_pool.create () in
  let i1 = Expr_pool.add pool (add a b) in
  let _ = Expr_pool.add pool (Expr.Binary (Expr.Mul, Expr.Var "c", Expr.Const 2)) in
  let i3 = Expr_pool.add pool (sub a (Expr.Const 1)) in
  Alcotest.(check (list int)) "reading a" [ i1; i3 ] (Expr_pool.reading pool "a")

let test_pool_growth () =
  let pool = Expr_pool.create () in
  for i = 0 to 99 do
    ignore (Expr_pool.add pool (add a (Expr.Const i)))
  done;
  Alcotest.(check int) "100 exprs" 100 (Expr_pool.size pool);
  Alcotest.(check int) "index stable" 100 (List.length (Expr_pool.to_list pool))

let test_instr () =
  let i = Instr.Assign ("x", add a b) in
  Alcotest.(check (option string)) "defs" (Some "x") (Instr.defs i);
  Alcotest.(check (list string)) "uses" [ "a"; "b" ] (Instr.uses i);
  Alcotest.(check bool) "candidate" true (Option.is_some (Instr.candidate i));
  Alcotest.(check bool) "modifies x" true (Instr.modifies i "x");
  let p = Instr.Print (Expr.Var "y") in
  Alcotest.(check (option string)) "print defs" None (Instr.defs p);
  Alcotest.(check (list string)) "print uses" [ "y" ] (Instr.uses p);
  Alcotest.(check bool) "print candidate" false (Option.is_some (Instr.candidate p));
  Alcotest.(check string) "pp" "x := a + b" (Instr.to_string i)

let suite =
  [
    Alcotest.test_case "canonicalization" `Quick test_canonical_commutative;
    Alcotest.test_case "vars" `Quick test_vars;
    Alcotest.test_case "reads_var" `Quick test_reads_var;
    Alcotest.test_case "is_candidate" `Quick test_is_candidate;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "pool dedup via canonicalization" `Quick test_pool_dedup;
    Alcotest.test_case "pool rejects atoms" `Quick test_pool_rejects_atoms;
    Alcotest.test_case "pool reading index" `Quick test_pool_reading;
    Alcotest.test_case "pool growth" `Quick test_pool_growth;
    Alcotest.test_case "instructions" `Quick test_instr;
  ]
