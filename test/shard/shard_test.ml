(* Process-level tests of the shard router: a real `lcmopt serve --shards N`
   fleet driven over stdio, with workers killed out from under it.

   What must hold when a worker dies mid-request:
   - the client still gets an ok response (the router replays the frame,
     same wire id and trace_id, on the ring successor);
   - the response is bit-identical to the one the dead worker would have
     produced (routing is content-addressed, workers are deterministic);
   - the dead worker is respawned and the restart shows up in stats;
   - retained handles die with their worker: a delta on them reports
     unknown_handle and a fresh retain starts over. *)

module Json = Lcm_server.Json
module Frame = Lcm_server.Frame
module Cfg = Lcm_cfg.Cfg
module Gencfg = Lcm_eval.Gencfg
module Prng = Lcm_support.Prng

let resolve_exe () =
  match Sys.getenv_opt "LCMOPT_EXE" with
  | Some p -> p
  | None ->
    let d = Filename.dirname Sys.executable_name in
    Filename.concat (Filename.dirname (Filename.dirname d)) "bin/lcmopt.exe"

type conn = {
  pid : int;
  req_w : Unix.file_descr;
  resp_r : Unix.file_descr;
  reader : Frame.reader;
  chunk : Bytes.t;
  mutable inbox : Json.t list;
}

let spawn args =
  let exe = resolve_exe () in
  if not (Sys.file_exists exe) then Alcotest.failf "daemon binary not found at %s" exe;
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process exe
      (Array.of_list ((exe :: [ "serve"; "--stdio"; "--quiet" ]) @ args))
      req_r resp_w Unix.stderr
  in
  Unix.close req_r;
  Unix.close resp_w;
  {
    pid;
    req_w;
    resp_r;
    reader = Frame.create ~max_frame:(1 lsl 22);
    chunk = Bytes.create 65536;
    inbox = [];
  }

let stop conn =
  (try Unix.close conn.req_w with Unix.Unix_error _ -> ());
  (try Unix.close conn.resp_r with Unix.Unix_error _ -> ());
  let rec wait () =
    match Unix.waitpid [] conn.pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

let send conn line =
  let line = line ^ "\n" in
  let n = String.length line in
  let k = ref 0 in
  while !k < n do
    k := !k + Unix.write_substring conn.req_w line !k (n - !k)
  done

(* First queued-or-arriving frame satisfying [pred] within [timeout_s];
   non-matching frames stay queued in arrival order. *)
let recv_until ?(timeout_s = 15.) conn pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let take () =
    let rec split acc = function
      | [] -> None
      | j :: rest when pred j ->
        conn.inbox <- List.rev_append acc rest;
        Some j
      | j :: rest -> split (j :: acc) rest
    in
    split [] conn.inbox
  in
  let rec go () =
    match take () with
    | Some j -> Some j
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then None
      else (
        match Unix.select [ conn.resp_r ] [] [] left with
        | [], _, _ -> None
        | _ -> (
          match Unix.read conn.resp_r conn.chunk 0 (Bytes.length conn.chunk) with
          | 0 -> None
          | n ->
            conn.inbox <-
              conn.inbox
              @ List.filter_map
                  (function Frame.Frame f -> Some (Json.parse f) | Frame.Oversized _ -> None)
                  (Frame.feed conn.reader conn.chunk n);
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let sfield j n = Option.bind (Json.member n j) Json.to_string_opt
let ifield j n = Option.bind (Json.member n j) Json.to_int_opt
let has_id id j = ifield j "id" = Some id

let roundtrip ?timeout_s conn id frame =
  send conn frame;
  match recv_until ?timeout_s conn (has_id id) with
  | Some j -> j
  | None -> Alcotest.failf "no response to request %d" id

let run_frame ?(retain = false) ?trace ~id text =
  Printf.sprintf "{\"id\":%d%s,\"op\":\"run\",\"format\":\"cfg\"%s,\"program\":%s}" id
    (match trace with Some t -> Printf.sprintf ",\"trace_id\":%S" t | None -> "")
    (if retain then ",\"retain\":true" else "")
    (Json.to_string (Json.String text))

let fetch_stats conn id =
  let j = roundtrip conn id (Printf.sprintf "{\"id\":%d,\"op\":\"stats\"}" id) in
  Option.value (Json.member "stats" j) ~default:Json.Null

let counter stats name =
  match Option.bind (Json.member "counters" stats) (Json.member name) with
  | Some v -> Option.value (Json.to_int_opt v) ~default:0
  | None -> 0

(* fleet rows from the stats "shard" object: (worker, pid, alive, restarts) *)
let fleet stats =
  match Option.bind (Json.member "shard" stats) (Json.member "fleet") with
  | Some (Json.List rows) ->
    List.filter_map
      (fun r ->
        match (ifield r "worker", ifield r "pid") with
        | Some w, Some p ->
          Some
            ( w,
              p,
              Option.value (Option.bind (Json.member "alive" r) Json.to_bool_opt) ~default:false,
              Option.value (ifield r "restarts") ~default:0 )
        | _ -> None)
      rows
  | _ -> []

let pid_of_worker stats w =
  match List.find_opt (fun (w', _, _, _) -> w' = w) (fleet stats) with
  | Some (_, p, _, _) -> p
  | None -> Alcotest.failf "worker %d not in the stats fleet" w

let gen_program seed blocks =
  Cfg.to_string
    (Gencfg.random_cfg
       ~params:{ Gencfg.default_cfg_params with Gencfg.num_blocks = blocks }
       (Prng.of_int seed))

let tiny =
  "cfg t (entry B0, exit B1)\nB0:\n  goto B2\nB1:\n  halt\nB2:\n  x := a + b\n  print x\n  if p \
   then B2 else B1\n"

(* ---- the happy path through the router ---- *)

let test_router_smoke () =
  let conn = spawn [ "--shards"; "2"; "--cache"; "64"; "--workers"; "1" ] in
  Fun.protect ~finally:(fun () -> stop conn) @@ fun () ->
  (* run: served by some worker, identified in the response *)
  let r1 = roundtrip conn 1 (run_frame ~id:1 tiny) in
  Alcotest.(check (option string)) "ok" (Some "ok") (sfield r1 "status");
  let w = match ifield r1 "worker" with Some w -> w | None -> Alcotest.fail "no worker field" in
  Alcotest.(check bool) "worker in range" true (w = 0 || w = 1);
  (* identical content again: answered by the router's result cache *)
  let r2 = roundtrip conn 2 (run_frame ~id:2 tiny) in
  Alcotest.(check (option string)) "cache hit" (Some "hit") (sfield r2 "cache");
  Alcotest.(check (option string)) "hit is bit-identical" (sfield r1 "program") (sfield r2 "program");
  (* retain + delta: handle names the serving worker, delta re-solves *)
  let r3 = roundtrip conn 3 (run_frame ~retain:true ~id:3 tiny) in
  let handle = match sfield r3 "handle" with Some h -> h | None -> Alcotest.fail "no handle" in
  let r4 =
    roundtrip conn 4
      (Printf.sprintf
         "{\"id\":4,\"op\":\"delta\",\"handle\":%S,\"edits\":[{\"block\":\"B2\",\"instrs\":[\"x := \
          a + b\",\"print x\",\"z := a + b\"]}]}"
         handle)
  in
  Alcotest.(check (option string)) "delta ok" (Some "ok") (sfield r4 "status");
  let solve = Option.value (Json.member "solve" r4) ~default:Json.Null in
  Alcotest.(check (option string)) "incremental path" (Some "incremental") (sfield solve "mode");
  (* stats: merged counters plus the fleet *)
  let stats = fetch_stats conn 5 in
  let rows = fleet stats in
  Alcotest.(check int) "two workers" 2 (List.length rows);
  List.iter (fun (_, _, alive, _) -> Alcotest.(check bool) "alive" true alive) rows;
  Alcotest.(check bool) "cache hit counted" true (counter stats "cache.hits_total" >= 1);
  (* the repeat texts above must have recalled their canonical digest
     from the raw-text memo instead of reparsing *)
  Alcotest.(check bool)
    "digest memo hit counted" true
    (counter stats "shard.digest_memo_hits_total" >= 1)

(* ---- kill -9 under load ---- *)

let test_crash_transparency () =
  let conn = spawn [ "--shards"; "2"; "--cache"; "0"; "--workers"; "1" ] in
  Fun.protect ~finally:(fun () -> stop conn) @@ fun () ->
  (* Repeat kill-under-load rounds until one provably interrupts an
     in-flight request (shard.retries_total advances); each round is
     correct either way, the loop only de-flakes the timing. *)
  let rec round i =
    if i > 6 then Alcotest.fail "no round interrupted an in-flight request";
    let text = gen_program (100 + i) 200 in
    let base = i * 10 in
    let r1 = roundtrip conn base (run_frame ~id:base text) in
    Alcotest.(check (option string)) "probe ok" (Some "ok") (sfield r1 "status");
    let w = match ifield r1 "worker" with Some w -> w | None -> Alcotest.fail "no worker" in
    let prog = match sfield r1 "program" with Some p -> p | None -> Alcotest.fail "no program" in
    let victim = pid_of_worker (fetch_stats conn (base + 1)) w in
    let retries_before = counter (fetch_stats conn (base + 2)) "shard.retries_total" in
    (* same content routes to the same worker; kill it mid-solve *)
    let trace = Printf.sprintf "crash-%d" i in
    send conn (run_frame ~trace ~id:(base + 3) text);
    Unix.kill victim Sys.sigkill;
    (match recv_until conn (has_id (base + 3)) with
    | None -> Alcotest.fail "request lost with the worker"
    | Some r2 ->
      Alcotest.(check (option string)) "still ok" (Some "ok") (sfield r2 "status");
      Alcotest.(check (option string)) "trace id survives the retry" (Some trace)
        (sfield r2 "trace_id");
      Alcotest.(check (option string)) "bit-identical across workers" (Some prog)
        (sfield r2 "program"));
    let retries_after = counter (fetch_stats conn (base + 4)) "shard.retries_total" in
    if retries_after <= retries_before then round (i + 1)
  in
  round 1;
  (* the fleet heals: the killed worker is respawned *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_heal id =
    let stats = fetch_stats conn id in
    let rows = fleet stats in
    let all_alive = List.length rows = 2 && List.for_all (fun (_, _, a, _) -> a) rows in
    if all_alive then
      Alcotest.(check bool) "restart recorded" true (counter stats "shard.worker_restarts_total" >= 1)
    else if Unix.gettimeofday () > deadline then Alcotest.fail "fleet never healed"
    else begin
      Unix.sleepf 0.1;
      wait_heal (id + 1)
    end
  in
  wait_heal 1000

(* ---- retained handles die with their worker ---- *)

let test_handle_dies_with_worker () =
  let conn = spawn [ "--shards"; "2"; "--cache"; "0"; "--workers"; "1" ] in
  Fun.protect ~finally:(fun () -> stop conn) @@ fun () ->
  let r1 = roundtrip conn 1 (run_frame ~retain:true ~id:1 tiny) in
  let handle = match sfield r1 "handle" with Some h -> h | None -> Alcotest.fail "no handle" in
  let w = match ifield r1 "worker" with Some w -> w | None -> Alcotest.fail "no worker" in
  Unix.kill (pid_of_worker (fetch_stats conn 2) w) Sys.sigkill;
  let delta id =
    roundtrip conn id
      (Printf.sprintf
         "{\"id\":%d,\"op\":\"delta\",\"handle\":%S,\"edits\":[{\"block\":\"B2\",\"instrs\":[\"x \
          := a + b\",\"print x\"]}]}"
         id handle)
  in
  (* Whether the router notices the death before, during, or after the
     forward, the delta must come back unknown_handle — never hang, never
     silently succeed against stale state. *)
  let r2 = delta 3 in
  Alcotest.(check (option string)) "error" (Some "error") (sfield r2 "status");
  Alcotest.(check (option string)) "unknown_handle" (Some "unknown_handle") (sfield r2 "code");
  (* recovery: a fresh retain mints a usable handle again *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec re_retain id =
    let r = roundtrip conn id (run_frame ~retain:true ~id tiny) in
    if sfield r "status" = Some "ok" then r
    else if Unix.gettimeofday () > deadline then Alcotest.failf "retain never recovered"
    else begin
      Unix.sleepf 0.1;
      re_retain (id + 1)
    end
  in
  let r3 = re_retain 10 in
  let handle2 = match sfield r3 "handle" with Some h -> h | None -> Alcotest.fail "no handle" in
  let r4 =
    roundtrip conn 100
      (Printf.sprintf
         "{\"id\":100,\"op\":\"delta\",\"handle\":%S,\"edits\":[{\"block\":\"B2\",\"instrs\":[\"x \
          := a + b\",\"print x\",\"z := a + b\"]}]}"
         handle2)
  in
  Alcotest.(check (option string)) "fresh handle serves deltas" (Some "ok") (sfield r4 "status")

let () =
  Alcotest.run "lcm-shard"
    [
      ( "shard",
        [
          Alcotest.test_case "router smoke: route, cache, retain, delta, stats" `Quick
            test_router_smoke;
          Alcotest.test_case "kill -9 under load: retried, bit-identical, healed" `Quick
            test_crash_transparency;
          Alcotest.test_case "handles die with their worker" `Quick test_handle_dies_with_worker;
        ] );
    ]
