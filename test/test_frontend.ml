(* The frontend registry and the Bril codec: name/extension resolution,
   function selection, typed parse errors with JSON paths, the vendored
   Bril corpus through every safe algorithm (placement check + interpreter
   equivalence), round-trip stability of parse ∘ print, and the serving
   path (`format` field, unsupported_format, retain + delta on a
   Bril-sourced graph). *)

module Cfg = Lcm_cfg.Cfg
module Cfg_text = Lcm_cfg.Cfg_text
module Frontend = Lcm_frontend.Frontend
module Bril = Lcm_frontend.Bril
module Registry = Lcm_eval.Registry
module Oracle = Lcm_eval.Oracle
module Gencfg = Lcm_eval.Gencfg
module Metrics = Lcm_eval.Metrics
module Prng = Lcm_support.Prng
module Lcse = Lcm_opt.Lcse
module Lcm_edge = Lcm_core.Lcm_edge
module Placement_check = Lcm_core.Placement_check
module Json = Lcm_server.Json
module Stats = Lcm_server.Stats
module Protocol = Lcm_server.Protocol
module Engine = Lcm_server.Engine

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The vendored corpus rides along as a dune dep (bril/*.json). *)
let corpus_dir = "bril"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort String.compare

(* Naive substring search; keeps the test free of the str library. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let parse_bril what text =
  match Bril.parse_program text with
  | funcs -> funcs
  | exception Bril.Err (m, path) -> Alcotest.failf "%s: parse failed at %s: %s" what path m

(* ---- registry ---- *)

let test_registry () =
  Alcotest.(check (list string)) "names" [ "miniimp"; "cfg"; "bril" ] Frontend.names;
  Alcotest.(check string) "default" "miniimp" Frontend.default.Frontend.name;
  (match Frontend.find "bril" with
  | Some fe ->
    Alcotest.(check bool) "bril is multi-function" true fe.Frontend.multi;
    Alcotest.(check bool) "bril routes canonical" true fe.Frontend.route_canonical
  | None -> Alcotest.fail "bril not registered");
  Alcotest.(check bool) "unknown name" true (Frontend.find "llvm" = None);
  let ext path = Option.map (fun fe -> fe.Frontend.name) (Frontend.of_extension path) in
  Alcotest.(check (option string)) ".json" (Some "bril") (ext "prog.json");
  Alcotest.(check (option string)) ".bril" (Some "bril") (ext "prog.bril");
  Alcotest.(check (option string)) ".imp" (Some "miniimp") (ext "prog.imp");
  Alcotest.(check (option string)) ".cfg" (Some "cfg") (ext "prog.cfg");
  Alcotest.(check (option string)) "unknown suffix" None (ext "prog.ll")

let test_function_selection () =
  let fe = Option.get (Frontend.find "bril") in
  let text = read_file (Filename.concat corpus_dir "multi_func.json") in
  (match Frontend.parse_one fe text with
  | Error (Frontend.Pick m) ->
    Alcotest.(check bool) "pick message lists the functions" true
      (contains m "first" && contains m "second")
  | Ok _ -> Alcotest.fail "two functions and no selection must not parse"
  | Error (Frontend.Parse e) -> Alcotest.failf "unexpected parse error: %s" e.Frontend.message);
  (match Frontend.parse_one fe ~func:"second" text with
  | Ok g -> Alcotest.(check string) "picked function" "second" (Cfg.name g)
  | Error _ -> Alcotest.fail "selection by name failed");
  (match Frontend.parse_one fe ~func:"zzz" text with
  | Error (Frontend.Pick _) -> ()
  | _ -> Alcotest.fail "unknown function name must be a pick error");
  (* Single-graph formats ignore the field, as the engine always has. *)
  let cfg_fe = Option.get (Frontend.find "cfg") in
  let some_graph =
    match Frontend.parse_one fe ~func:"first" text with
    | Ok g -> g
    | Error _ -> Alcotest.fail "picking \"first\" failed"
  in
  match Frontend.parse_one cfg_fe ~func:"anything" (Cfg.to_string some_graph) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "cfg must ignore the function field"

(* ---- typed parse errors with JSON paths ---- *)

let test_parse_errors () =
  let expect_err what text path_fragment msg_fragment =
    match Bril.parse_program text with
    | _ -> Alcotest.failf "%s: expected a parse error" what
    | exception Bril.Err (m, path) ->
      if not (contains path path_fragment) then
        Alcotest.failf "%s: path %S lacks %S" what path path_fragment;
      if not (contains m msg_fragment) then Alcotest.failf "%s: message %S lacks %S" what m msg_fragment
  in
  expect_err "malformed" "{ not json" "$" "malformed JSON";
  expect_err "truncated" "{\"functions\":[{\"name\":\"f\",\"instrs\":[" "$" "malformed JSON";
  expect_err "no functions key" "{}" "$" "";
  expect_err "empty functions" "{\"functions\":[]}" "functions" "no function";
  expect_err "jmp without label"
    "{\"functions\":[{\"name\":\"f\",\"instrs\":[{\"op\":\"jmp\"}]}]}" "functions[0].instrs[0]" "";
  expect_err "unknown branch target"
    "{\"functions\":[{\"name\":\"f\",\"instrs\":[{\"op\":\"jmp\",\"labels\":[\"nowhere\"]}]}]}"
    "functions[0]" "nowhere";
  expect_err "duplicate label"
    "{\"functions\":[{\"name\":\"f\",\"instrs\":[{\"label\":\"a\"},{\"label\":\"a\"}]}]}" "functions[0]"
    "a"

(* ---- the vendored corpus through the full registry ---- *)

let graphs_of_corpus () =
  List.concat_map
    (fun file ->
      let text = read_file (Filename.concat corpus_dir file) in
      List.map (fun (fn, g) -> (file ^ ":" ^ fn, g)) (parse_bril file text))
    (corpus_files ())

let test_corpus_parses () =
  let graphs = graphs_of_corpus () in
  Alcotest.(check bool) "corpus is non-empty" true (List.length graphs >= 8);
  List.iter
    (fun (what, g) ->
      Alcotest.(check bool) (what ^ " has blocks") true (Cfg.num_blocks g >= 2);
      (* Every graph must survive a static round through the verifier's
         input expectations: one exit, terminators resolved. *)
      let s = Metrics.static_counts g in
      Alcotest.(check bool) (what ^ " instrs counted") true (s.Metrics.instrs >= 0))
    graphs

let test_corpus_all_algorithms () =
  let graphs = graphs_of_corpus () in
  List.iter
    (fun (what, g) ->
      let inputs = Cfg.all_vars g in
      (* The paper's verifier on the LCM spec itself. *)
      (match Placement_check.check g (Lcm_edge.spec g (Lcm_edge.analyze g)) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: placement check: %s" what m);
      List.iter
        (fun (e : Registry.entry) ->
          let g' = e.Registry.run g in
          match
            Oracle.semantics ~runs:6 ~inputs (Prng.of_int 97) ~original:g ~transformed:g'
          with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s/%s: %s" what e.Registry.name m)
        Registry.safe)
    graphs

let test_diamond_pre_fires () =
  (* The partially redundant a+b in the diamond must move: one insertion
     on the empty arm, one deletion at the join. *)
  let text = read_file (Filename.concat corpus_dir "diamond.json") in
  let g = snd (List.hd (parse_bril "diamond" text)) in
  let r = Lcm_edge.analyze g in
  let spec = Lcm_edge.spec g r in
  Alcotest.(check bool) "has insertions" true (spec.Lcm_core.Transform.edge_inserts <> []);
  Alcotest.(check bool) "has deletions" true (spec.Lcm_core.Transform.deletes <> [])

(* ---- round-trip: parse ∘ print ---- *)

let roundtrip what g =
  let t1 = Bril.print g in
  let g2 =
    match Bril.parse_program t1 with
    | [ (_, g2) ] -> g2
    | _ -> Alcotest.failf "%s: printed program is not one function" what
    | exception Bril.Err (m, path) ->
      Alcotest.failf "%s: printed program does not re-parse (%s: %s)\n%s" what path m t1
  in
  g2

let test_corpus_roundtrip () =
  List.iter
    (fun (what, g) ->
      let g2 = roundtrip what g in
      let g3 = roundtrip (what ^ " (second round)") g2 in
      (* Printing is a fixpoint from the first re-parse on: the same bytes,
         the same canonical digest. *)
      Alcotest.(check string) (what ^ " text fixpoint") (Bril.print g2) (Bril.print g3);
      Alcotest.(check string) (what ^ " digest fixpoint") (Cfg.digest g2) (Cfg.digest g3);
      (* And it means the same program. *)
      match
        Oracle.semantics ~runs:6 ~inputs:(Cfg.all_vars g) (Prng.of_int 11) ~original:g ~transformed:g2
      with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: round-trip changed semantics: %s" what m)
    (graphs_of_corpus ())

(* Arbitrary graphs — including ones no Bril program could have produced
   (constant operands, constant branch conditions) — still normalize to a
   printing fixpoint after one round. *)
let prop_roundtrip_stabilizes =
  QCheck2.Test.make ~name:"bril print ∘ parse reaches a fixpoint on random graphs" ~count:80
    (QCheck2.Gen.int_bound 1_000_000) (fun seed ->
      let rng = Prng.of_int (seed + 31) in
      let g = fst (Lcse.run (Gencfg.random_cfg rng)) in
      let g2 = roundtrip "random" g in
      let g3 = roundtrip "random (second round)" g2 in
      let t2 = Bril.print g2 and t3 = Bril.print g3 in
      if t2 <> t3 then QCheck2.Test.fail_reportf "not a fixpoint:\n%s\nvs\n%s" t2 t3;
      if Cfg.digest g2 <> Cfg.digest g3 then QCheck2.Test.fail_report "digest unstable";
      (* The normalized graph still means the same program as its own
         round-trip (the first round may coerce constants to their
         declared type, so compare from g2 on). *)
      match
        Oracle.semantics ~runs:6 ~inputs:(Cfg.all_vars g2) (Prng.of_int (seed + 1)) ~original:g2
          ~transformed:g3
      with
      | Ok () -> true
      | Error m -> QCheck2.Test.fail_reportf "round-trip changed semantics: %s" m)

(* ---- the serving path ---- *)

let now = Unix.gettimeofday

let engine_cfg () =
  let stats = Stats.create () in
  Engine.default_config stats

let exec cfg frame =
  match Protocol.parse_request frame with
  | Error (_, _, code, m) -> Alcotest.failf "bad test frame (%s): %s" (Protocol.error_code_to_string code) m
  | Ok req ->
    let t = now () in
    Json.parse (Engine.execute cfg ~now ~arrival:t ~deadline:None req)

let str_field name j = Option.bind (Json.member name j) Json.to_string_opt

let run_frame ?(extra = "") ~format program =
  Printf.sprintf "{\"id\":1,\"op\":\"run\",\"format\":%S,\"algorithm\":\"lcm-edge\"%s,\"program\":%s}" format
    extra
    (Json.to_string (Json.String program))

let test_engine_bril_request () =
  let cfg = engine_cfg () in
  let text = read_file (Filename.concat corpus_dir "diamond.json") in
  let resp = exec cfg (run_frame ~format:"bril" text) in
  Alcotest.(check (option string)) "status" (Some "ok") (str_field "status" resp);
  (* The response program is the optimized graph in the canonical text the
     whole system shares. *)
  let g = snd (List.hd (parse_bril "diamond" text)) in
  let expected = Cfg.to_string ((Option.get (Registry.find "lcm-edge")).Registry.run g) in
  Alcotest.(check (option string)) "program" (Some expected) (str_field "program" resp);
  (* Sniffing: no format field and a '{' program routes to bril. *)
  let sniffed =
    exec cfg
      (Printf.sprintf "{\"id\":2,\"op\":\"run\",\"algorithm\":\"lcm-edge\",\"program\":%s}"
         (Json.to_string (Json.String text)))
  in
  Alcotest.(check (option string)) "sniffed status" (Some "ok") (str_field "status" sniffed);
  Alcotest.(check (option string)) "sniffed ≡ explicit" (str_field "program" resp)
    (str_field "program" sniffed);
  (* Function selection over the wire. *)
  let multi = read_file (Filename.concat corpus_dir "multi_func.json") in
  let resp = exec cfg (run_frame ~format:"bril" ~extra:",\"function\":\"second\"" multi) in
  Alcotest.(check (option string)) "function pick" (Some "ok") (str_field "status" resp);
  let resp = exec cfg (run_frame ~format:"bril" multi) in
  Alcotest.(check (option string)) "missing pick is bad_request" (Some "bad_request")
    (str_field "code" resp);
  (* Per-format counters registered and bumped. *)
  let stats = exec cfg "{\"id\":3,\"op\":\"stats\"}" in
  let counters j = Option.bind (Json.member "stats" j) (Json.member "counters") in
  match Option.bind (counters stats) (Json.member "requests.format.bril") with
  | Some (Json.Int n) -> Alcotest.(check bool) "requests.format.bril counted" true (n >= 4)
  | _ -> Alcotest.fail "stats lack requests.format.bril"

let test_engine_unsupported_format () =
  let cfg = engine_cfg () in
  let resp = exec cfg (run_frame ~format:"llvm" "whatever") in
  Alcotest.(check (option string)) "status" (Some "error") (str_field "status" resp);
  Alcotest.(check (option string)) "code" (Some "unsupported_format") (str_field "code" resp);
  match str_field "message" resp with
  | Some m ->
    List.iter
      (fun name -> if not (contains m name) then Alcotest.failf "message %S lacks %S" m name)
      Frontend.names
  | None -> Alcotest.fail "no message"

let test_engine_bril_parse_error_path () =
  let cfg = engine_cfg () in
  let resp = exec cfg (run_frame ~format:"bril" "{\"functions\":[{\"name\":\"f\",\"instrs\":[{\"op\":\"jmp\"}]}]}") in
  Alcotest.(check (option string)) "code" (Some "parse_error") (str_field "code" resp);
  match str_field "message" resp with
  | Some m ->
    if not (contains m "functions[0].instrs[0]") then
      Alcotest.failf "message %S lacks the JSON path" m
  | None -> Alcotest.fail "no message"

let test_retain_delta_on_bril () =
  (* A Bril-sourced graph through the incremental serving path: retain,
     then patch a block and re-solve, with the from-scratch cross-check. *)
  let cfg = engine_cfg () in
  let text = read_file (Filename.concat corpus_dir "diamond.json") in
  let resp = exec cfg (run_frame ~format:"bril" ~extra:",\"retain\":true" text) in
  Alcotest.(check (option string)) "retain ok" (Some "ok") (str_field "status" resp);
  let handle =
    match str_field "handle" resp with
    | Some h -> h
    | None -> Alcotest.fail "no handle on a retained bril run"
  in
  let retained =
    match str_field "retained_program" resp with
    | Some p -> p
    | None -> Alcotest.fail "no retained_program"
  in
  (* Pick a block with a body from the canonical echo and rewrite it. *)
  let g = Cfg_text.parse retained in
  let target =
    match List.find_opt (fun l -> Cfg.instrs g l <> []) (Cfg.labels g) with
    | Some l -> Printf.sprintf "B%d" (l : Lcm_cfg.Label.t :> int)
    | None -> Alcotest.fail "retained graph has no instructions"
  in
  let frame =
    Printf.sprintf
      "{\"id\":9,\"op\":\"delta\",\"handle\":%S,\"validate\":true,\"edits\":[{\"block\":%S,\"instrs\":[\"zq := a + b\"]}]}"
      handle target
  in
  let resp = exec cfg frame in
  Alcotest.(check (option string)) "delta ok" (Some "ok") (str_field "status" resp);
  match Json.member "solve" resp with
  | Some _ -> ()
  | None -> Alcotest.fail "delta response lacks solve stats"

let suite =
  [
    Alcotest.test_case "registry: names, default, extensions" `Quick test_registry;
    Alcotest.test_case "function selection policy" `Quick test_function_selection;
    Alcotest.test_case "bril: typed errors carry JSON paths" `Quick test_parse_errors;
    Alcotest.test_case "corpus: every program parses" `Quick test_corpus_parses;
    Alcotest.test_case "corpus: every safe algorithm preserves semantics" `Slow test_corpus_all_algorithms;
    Alcotest.test_case "corpus: diamond PRE fires" `Quick test_diamond_pre_fires;
    Alcotest.test_case "corpus: print ∘ parse is a fixpoint" `Quick test_corpus_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_stabilizes;
    Alcotest.test_case "engine: bril requests end to end" `Quick test_engine_bril_request;
    Alcotest.test_case "engine: unsupported_format" `Quick test_engine_unsupported_format;
    Alcotest.test_case "engine: bril parse errors keep their path" `Quick test_engine_bril_parse_error_path;
    Alcotest.test_case "engine: retain + delta on a bril graph" `Quick test_retain_delta_on_bril;
  ]
