(* Baseline transformations: LCSE, GCSE, LICM, Morel-Renvoise. *)

module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Lcse = Lcm_opt.Lcse
module Gcse = Lcm_baselines.Gcse
module Licm = Lcm_baselines.Licm
module Morel_renvoise = Lcm_baselines.Morel_renvoise
module Oracle = Lcm_eval.Oracle
module Interp = Lcm_eval.Interp
module Suites = Lcm_eval.Suites
module Prng = Lcm_support.Prng

let a_plus_b = Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")

let test_lcse_removes_duplicate () =
  let g = Cfg.create () in
  let b =
    Cfg.add_block g
      ~instrs:[ Instr.Assign ("x", a_plus_b); Instr.Assign ("y", a_plus_b) ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let g', n = Lcse.run g in
  Alcotest.(check int) "one replacement" 1 n;
  match Cfg.instrs g' b with
  | [ Instr.Assign ("x", _); Instr.Assign ("y", Expr.Atom (Expr.Var "x")) ] -> ()
  | _ -> Alcotest.fail "expected y := x"

let test_lcse_respects_kills () =
  let g = Cfg.create () in
  let b =
    Cfg.add_block g
      ~instrs:
        [
          Instr.Assign ("x", a_plus_b);
          Instr.Assign ("a", Expr.Atom (Expr.Const 0));
          Instr.Assign ("y", a_plus_b);
        ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let _, n = Lcse.run g in
  Alcotest.(check int) "no replacement across kill" 0 n

let test_lcse_holder_overwritten () =
  (* x holds a+b, then x is overwritten: the value must be published into
     a fresh temporary so the recomputation can still be eliminated. *)
  let g = Cfg.create () in
  let b =
    Cfg.add_block g
      ~instrs:
        [
          Instr.Assign ("x", a_plus_b);
          Instr.Assign ("x", Expr.Atom (Expr.Const 0));
          Instr.Assign ("y", a_plus_b);
        ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let g', n = Lcse.run g in
  Alcotest.(check int) "recomputation eliminated via temp" 1 n;
  match Cfg.instrs g' b with
  | [ Instr.Assign ("x", _); Instr.Assign (t1, Expr.Atom (Expr.Var "x")); Instr.Assign ("x", _);
      Instr.Assign ("y", Expr.Atom (Expr.Var t2)) ] ->
    Alcotest.(check string) "copy feeds the reuse" t1 t2
  | is -> Alcotest.failf "unexpected layout (%d instrs)" (List.length is)

let test_lcse_self_kill_no_span () =
  (* a := a + d computes a+d and immediately kills it: the later
     recomputation is a different value and must stay. *)
  let a_plus_d = Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "d") in
  let g = Cfg.create () in
  let b =
    Cfg.add_block g
      ~instrs:[ Instr.Assign ("a", a_plus_d); Instr.Assign ("y", a_plus_d) ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let _, n = Lcse.run g in
  Alcotest.(check int) "no replacement across self-kill" 0 n

let test_lcse_commutative () =
  let g = Cfg.create () in
  let b_plus_a = Expr.Binary (Expr.Add, Expr.Var "b", Expr.Var "a") in
  let b =
    Cfg.add_block g
      ~instrs:[ Instr.Assign ("x", a_plus_b); Instr.Assign ("y", b_plus_a) ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let _, n = Lcse.run g in
  Alcotest.(check int) "commutative match" 1 n

let test_gcse_two_arm_join () =
  (* Both arms compute a+b: the join's recomputation is fully redundant. *)
  let w = Option.get (Suites.find "two_arm_redundancy") in
  let g = Suites.graph w in
  let a = Gcse.analyze g in
  Alcotest.(check int) "one deletion block" 1 (List.length a.Gcse.delete);
  Alcotest.(check int) "copies seed both arms" 2 (List.length a.Gcse.copy);
  let g', _ = Gcse.transform g in
  match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 5) ~original:g ~transformed:g' with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_gcse_misses_partial () =
  (* One arm only: partial redundancy is beyond GCSE. *)
  let w = Option.get (Suites.find "diamond") in
  let g = Suites.graph w in
  let a = Gcse.analyze g in
  Alcotest.(check int) "no deletions" 0 (List.length a.Gcse.delete)

let test_licm_hoists_invariant () =
  let w = Option.get (Suites.find "loop_invariant") in
  let g = Suites.graph w in
  let g', stats = Licm.transform g in
  Alcotest.(check bool) "hoisted something" true (stats.Licm.hoisted >= 1);
  Alcotest.(check bool) "made a preheader" true (stats.Licm.preheaders_created >= 1);
  (* Dynamically: a*b once instead of n times (speculative but profitable
     here). *)
  let pool = Cfg.candidate_pool g in
  let env = [ ("a", 2); ("b", 3); ("n", 7) ] in
  let mul = Expr.Binary (Expr.Mul, Expr.Var "a", Expr.Var "b") in
  let idx = Option.get (Lcm_ir.Expr_pool.index pool mul) in
  let orig = Interp.run ~pool ~env g in
  let opt = Interp.run ~pool ~env g' in
  Alcotest.(check bool) "same behaviour" true (Interp.same_behaviour orig opt);
  Alcotest.(check int) "original n evals" 7 orig.Interp.eval_counts.(idx);
  Alcotest.(check int) "licm 1 eval" 1 opt.Interp.eval_counts.(idx)

let test_licm_is_speculative () =
  (* On the zero-trip loop LICM evaluates a*b once although the original
     never does — per-path safety is violated (the paper's motivation for
     down-safety). *)
  let w = Option.get (Suites.find "loop_invariant") in
  let g = Suites.graph w in
  let g', _ = Licm.transform g in
  let pool = Cfg.candidate_pool g in
  match Oracle.safety ~pool ~original:g g' with
  | Ok () -> Alcotest.fail "expected LICM to be unsafe on some path"
  | Error _ -> ()

let test_licm_semantics_on_workloads () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let g', _ = Licm.transform g in
      match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 17) ~original:g ~transformed:g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" w.Suites.name m)
    Suites.all

let test_morel_renvoise_diamond () =
  (* MR finds the diamond partial redundancy with a block-end insertion. *)
  let w = Option.get (Suites.find "diamond") in
  let g = Suites.graph w in
  let a = Morel_renvoise.analyze g in
  Alcotest.(check int) "one insertion block" 1 (List.length a.Morel_renvoise.insert);
  Alcotest.(check int) "one deletion block" 1 (List.length a.Morel_renvoise.delete)

let test_morel_renvoise_sound_on_workloads () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let g', _ = Morel_renvoise.transform g in
      (match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 29) ~original:g ~transformed:g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: semantics: %s" w.Suites.name m);
      match Oracle.safety ~pool ~original:g g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: safety: %s" w.Suites.name m)
    Suites.all

let test_lcm_never_worse_than_mr () =
  (* Computational optimality relative to the pre-LCM state of the art. *)
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let lcm = (Option.get (Lcm_eval.Registry.find "lcm-edge")).Lcm_eval.Registry.run g in
      let mr, _ = Morel_renvoise.transform g in
      match Oracle.computations_leq ~pool lcm mr with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" w.Suites.name m)
    Suites.all

let suite =
  [
    Alcotest.test_case "lcse removes duplicates" `Quick test_lcse_removes_duplicate;
    Alcotest.test_case "lcse respects kills" `Quick test_lcse_respects_kills;
    Alcotest.test_case "lcse holder overwritten" `Quick test_lcse_holder_overwritten;
    Alcotest.test_case "lcse self-kill opens no span" `Quick test_lcse_self_kill_no_span;
    Alcotest.test_case "lcse commutative matching" `Quick test_lcse_commutative;
    Alcotest.test_case "gcse deletes full redundancy" `Quick test_gcse_two_arm_join;
    Alcotest.test_case "gcse misses partial redundancy" `Quick test_gcse_misses_partial;
    Alcotest.test_case "licm hoists invariants" `Quick test_licm_hoists_invariant;
    Alcotest.test_case "licm is speculative (unsafe)" `Quick test_licm_is_speculative;
    Alcotest.test_case "licm preserves semantics" `Quick test_licm_semantics_on_workloads;
    Alcotest.test_case "morel-renvoise on diamond" `Quick test_morel_renvoise_diamond;
    Alcotest.test_case "morel-renvoise sound" `Quick test_morel_renvoise_sound_on_workloads;
    Alcotest.test_case "lcm never worse than morel-renvoise" `Quick test_lcm_never_worse_than_mr;
  ]
