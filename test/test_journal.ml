(* The crash-durability layer: the journal record codec (CRC framing,
   torn-tail detection), the per-handle write-ahead journal (compaction,
   stray-tmp cleanup, quarantine), and the engine's recovery path — a
   handle rebuilt from its journal must be indistinguishable from one
   that never crashed: the same id, and bit-identical responses to the
   same subsequent deltas. *)

module Json = Lcm_server.Json
module Journal = Lcm_support.Journal
module Hjournal = Lcm_server.Hjournal
module Stats = Lcm_server.Stats
module Engine = Lcm_server.Engine
module Protocol = Lcm_server.Protocol
module Handles = Lcm_server.Handles

let now = Unix.gettimeofday
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let fresh_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---- record codec ---- *)

let codec_crc32_known () =
  (* The standard CRC-32 (IEEE) check value. *)
  checki "crc32(123456789)" 0xCBF43926 (Journal.crc32 "123456789");
  checki "crc32(empty)" 0 (Journal.crc32 "");
  (* Running continuation must equal the one-shot checksum. *)
  checki "streamed = one-shot" (Journal.crc32 "hello world")
    (Journal.crc32 ~crc:(Journal.crc32 "hello ") "world")

let codec_roundtrip () =
  let payloads = [ ""; "x"; String.make 1000 '\xff'; "{\"op\":\"delta\"}"; "a\nb\x00c" ] in
  let s = String.concat "" (List.map Journal.encode_record payloads) in
  let got, consumed, status = Journal.decode s in
  Alcotest.(check (list string)) "payloads" payloads got;
  checki "consumed everything" (String.length s) consumed;
  checkb "clean" true (status = `Clean)

let codec_torn_tail () =
  let payloads = [ "first"; "second"; "third" ] in
  let records = List.map Journal.encode_record payloads in
  let s = String.concat "" records in
  let r1 = String.length (List.nth records 0) in
  let r2 = r1 + String.length (List.nth records 1) in
  (* Cut at every byte inside the third record: the first two must
     always decode, the scan must always stop at the clean boundary. *)
  for cut = r2 + 1 to String.length s - 1 do
    let got, consumed, status = Journal.decode (String.sub s 0 cut) in
    Alcotest.(check (list string))
      (Printf.sprintf "prefix at cut %d" cut)
      [ "first"; "second" ] got;
    checki "clean boundary" r2 consumed;
    checkb "torn" true (status = `Torn)
  done

let codec_corrupt_payload () =
  let s =
    Journal.encode_record "keep" ^ Journal.encode_record "damaged" ^ Journal.encode_record "after"
  in
  (* Flip one payload byte of the middle record: its CRC check fails, so
     decoding stops after the first record even though the third is
     intact — a half-written rewrite must not resurrect later bytes. *)
  let b = Bytes.of_string s in
  let pos = String.length (Journal.encode_record "keep") + 9 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let got, _, status = Journal.decode (Bytes.to_string b) in
  Alcotest.(check (list string)) "only the clean prefix" [ "keep" ] got;
  checkb "torn" true (status = `Torn)

let codec_bad_tag () =
  let s = Journal.encode_record "ok" ^ "Zgarbage-that-is-not-a-record" in
  let got, consumed, status = Journal.decode s in
  Alcotest.(check (list string)) "stops at the bad tag" [ "ok" ] got;
  checki "boundary" (String.length (Journal.encode_record "ok")) consumed;
  checkb "torn" true (status = `Torn)

let prop_codec_roundtrip =
  let gen =
    QCheck2.Gen.(small_list (string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 200)))
  in
  QCheck2.Test.make ~name:"codec: encode/decode roundtrip on random payloads" ~count:200 gen
    (fun payloads ->
      let s = String.concat "" (List.map Journal.encode_record payloads) in
      let got, consumed, status = Journal.decode s in
      got = payloads && consumed = String.length s && status = `Clean)

let prop_codec_truncation =
  (* Any truncation of a valid stream decodes to a prefix of the
     payloads — never garbage, never an exception. *)
  let gen = QCheck2.Gen.(pair (list_size (int_range 1 8) (string_size (int_bound 64))) (int_bound 10_000)) in
  QCheck2.Test.make ~name:"codec: any truncation yields a clean prefix" ~count:300 gen
    (fun (payloads, cut_seed) ->
      let s = String.concat "" (List.map Journal.encode_record payloads) in
      let cut = cut_seed mod (String.length s + 1) in
      let got, consumed, _ = Journal.decode (String.sub s 0 cut) in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'
        | _ :: _, [] -> false
      in
      is_prefix got payloads && consumed <= cut)

(* ---- per-handle journal files ---- *)

let mk_journal ?(compact_every = 1000) dir =
  match Hjournal.create ~dir ~fsync:false ~compact_every () with
  | Ok t -> t
  | Error m -> Alcotest.failf "Hjournal.create: %s" m

let edits_json i =
  Json.List
    [
      Json.Obj
        [
          ("block", Json.String "B2");
          ("instrs", Json.List [ Json.String (Printf.sprintf "x := a + b" ); Json.String (Printf.sprintf "t%d := a + b" i) ]);
        ];
    ]

let hj_roundtrip () =
  let dir = fresh_dir "lcm-hj" in
  let t = mk_journal dir in
  let record h =
    match Hjournal.record_base t ~handle:h ~algorithm:"lcm-edge" ~simplify:false ~program:("prog-" ^ h) with
    | Ok () -> ()
    | Error m -> Alcotest.failf "record_base: %s" m
  in
  record "h0-2";
  record "h0-1";
  (for i = 1 to 3 do
     match
       Hjournal.record_patch t ~handle:"h0-1" ~edits:(edits_json i) ~algorithm:"lcm-edge"
         ~simplify:false ~program:(fun () -> "unused-snapshot")
     with
     | Ok `Appended -> ()
     | Ok `Compacted -> Alcotest.fail "unexpected compaction"
     | Error m -> Alcotest.failf "record_patch: %s" m
   done);
  let recovered, torn, quarantined = Hjournal.recover t in
  checki "no torn files" 0 torn;
  checki "no quarantined files" 0 quarantined;
  checki "both handles" 2 (List.length recovered);
  (* Sorted by mint sequence, not directory order. *)
  checks "seq order" "h0-1" (List.nth recovered 0).Hjournal.r_handle;
  checks "seq order" "h0-2" (List.nth recovered 1).Hjournal.r_handle;
  let r1 = List.nth recovered 0 in
  checks "base survives" "prog-h0-1" r1.Hjournal.r_program;
  checki "all patches, in order" 3 (List.length r1.Hjournal.r_patches);
  checkb "patch payloads intact" true (List.nth r1.Hjournal.r_patches 2 = edits_json 3);
  checkb "nothing truncated" true (not r1.Hjournal.r_truncated)

let hj_compaction () =
  let dir = fresh_dir "lcm-hjc" in
  let t = mk_journal ~compact_every:2 dir in
  (match Hjournal.record_base t ~handle:"h0-1" ~algorithm:"lcm-edge" ~simplify:true ~program:"v0" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "record_base: %s" m);
  let patch i program =
    Hjournal.record_patch t ~handle:"h0-1" ~edits:(edits_json i) ~algorithm:"lcm-edge"
      ~simplify:true ~program:(fun () -> program)
  in
  checkb "first append" true (patch 1 "v1" = Ok `Appended);
  checkb "threshold compacts" true (patch 2 "v2" = Ok `Compacted);
  let recovered, _, _ = Hjournal.recover t in
  let r = List.hd recovered in
  checks "snapshot is the post-patch program" "v2" r.Hjournal.r_program;
  checkb "simplify preserved" true r.Hjournal.r_simplify;
  checki "patch log truncated" 0 (List.length r.Hjournal.r_patches);
  (* The log keeps accepting patches after a compaction. *)
  checkb "append after compaction" true (patch 3 "v3" = Ok `Appended);
  let recovered, _, _ = Hjournal.recover t in
  let r = List.hd recovered in
  checks "snapshot base" "v2" r.Hjournal.r_program;
  checki "one patch since snapshot" 1 (List.length r.Hjournal.r_patches)

let hj_mid_compaction_crash () =
  (* A crash between writing the compaction tmp and the rename leaves
     both files; recovery must delete the stray tmp and use the intact
     journal — patch log included. *)
  let dir = fresh_dir "lcm-hjt" in
  let t = mk_journal dir in
  (match Hjournal.record_base t ~handle:"h0-1" ~algorithm:"lcm-edge" ~simplify:false ~program:"v0" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "record_base: %s" m);
  ignore
    (Hjournal.record_patch t ~handle:"h0-1" ~edits:(edits_json 1) ~algorithm:"lcm-edge"
       ~simplify:false ~program:(fun () -> "v1"));
  let tmp = Hjournal.path t ~handle:"h0-1" ^ ".tmp" in
  write_file tmp "half-written compaction snapshot";
  let recovered, torn, quarantined = Hjournal.recover t in
  checkb "stray tmp removed" true (not (Sys.file_exists tmp));
  checki "nothing quarantined" 0 quarantined;
  checki "nothing torn" 0 torn;
  let r = List.hd recovered in
  checks "journal wins" "v0" r.Hjournal.r_program;
  checki "patch log intact" 1 (List.length r.Hjournal.r_patches)

let hj_torn_tail_truncated () =
  let dir = fresh_dir "lcm-hjtt" in
  let t = mk_journal dir in
  (match Hjournal.record_base t ~handle:"h0-1" ~algorithm:"lcm-edge" ~simplify:false ~program:"v0" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "record_base: %s" m);
  ignore
    (Hjournal.record_patch t ~handle:"h0-1" ~edits:(edits_json 1) ~algorithm:"lcm-edge"
       ~simplify:false ~program:(fun () -> "v1"));
  let path = Hjournal.path t ~handle:"h0-1" in
  let clean = read_file path in
  (* kill -9 mid-append: half a record past the clean end. *)
  write_file path (clean ^ String.sub (Journal.encode_record "unfinished patch") 0 7);
  let recovered, torn, _ = Hjournal.recover t in
  checki "one torn file" 1 torn;
  let r = List.hd recovered in
  checkb "flagged" true r.Hjournal.r_truncated;
  checki "clean prefix replayed" 1 (List.length r.Hjournal.r_patches);
  checki "file truncated back to the clean boundary" (String.length clean)
    (String.length (read_file path));
  (* Second recovery is quiet: the damage is gone. *)
  let _, torn, _ = Hjournal.recover t in
  checki "no torn files on re-scan" 0 torn

let hj_quarantine () =
  let dir = fresh_dir "lcm-hjq" in
  let t = mk_journal dir in
  (match Hjournal.record_base t ~handle:"h0-1" ~algorithm:"lcm-edge" ~simplify:false ~program:"v0" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "record_base: %s" m);
  (* Not a journal at all: bad magic. *)
  write_file (Filename.concat dir "h0-2.journal") "this is not a journal";
  (* A journal whose first record is not a base record. *)
  write_file (Filename.concat dir "h0-3.journal") (Journal.file_magic ^ Journal.encode_record "{}");
  let recovered, _, quarantined = Hjournal.recover t in
  checki "two quarantined" 2 quarantined;
  checki "the good one survives" 1 (List.length recovered);
  checkb "bad file set aside" true (Sys.file_exists (Filename.concat dir "h0-2.journal.corrupt"));
  checkb "bad file no longer scanned" true
    (not (Sys.file_exists (Filename.concat dir "h0-2.journal")));
  (* Re-recovery does not trip over the quarantined files again. *)
  let recovered, _, quarantined = Hjournal.recover t in
  checki "quiet re-scan" 0 quarantined;
  checki "still one handle" 1 (List.length recovered)

let hj_drop () =
  let dir = fresh_dir "lcm-hjd" in
  let t = mk_journal dir in
  (match Hjournal.record_base t ~handle:"h0-1" ~algorithm:"lcm-edge" ~simplify:false ~program:"v0" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "record_base: %s" m);
  Hjournal.drop t ~handle:"h0-1";
  let recovered, _, _ = Hjournal.recover t in
  checki "dropped journal stays gone" 0 (List.length recovered)

(* ---- engine recovery ---- *)

let diamond_text =
  "cfg d (entry B0, exit B1)\n\
   B0:\n\
  \  if a then B2 else B3\n\
   B1:\n\
  \  halt\n\
   B2:\n\
  \  x := a + b\n\
  \  goto B4\n\
   B3:\n\
  \  goto B4\n\
   B4:\n\
  \  y := a + b\n\
  \  goto B1\n"

let engine_cfg ?handle_capacity ?compact_every dir =
  let stats = Stats.create () in
  let journal =
    match Hjournal.create ~dir ~fsync:false ?compact_every () with
    | Ok t -> t
    | Error m -> Alcotest.failf "Hjournal.create: %s" m
  in
  Engine.default_config ?handle_capacity ~journal ~worker_id:0 stats

let exec cfg frame =
  match Protocol.parse_request frame with
  | Error (_, _, code, m) -> Alcotest.failf "bad test frame (%s): %s" (Protocol.error_code_to_string code) m
  | Ok req ->
    let t = now () in
    Json.parse (Engine.execute cfg ~now ~arrival:t ~deadline:None req)

let str_field name j = Option.bind (Json.member name j) Json.to_string_opt

let retain_frame ?(validate = false) program =
  Printf.sprintf "{\"id\":1,\"op\":\"run\",\"retain\":true,\"validate\":%b,\"program\":%s}" validate
    (Json.to_string (Json.String program))

let delta_frame ~handle instrs =
  Printf.sprintf "{\"id\":2,\"op\":\"delta\",\"handle\":%S,\"edits\":[{\"block\":\"B2\",\"instrs\":[%s]}]}"
    handle
    (String.concat "," (List.map (fun i -> Json.to_string (Json.String i)) instrs))

let expect_ok what resp =
  (match str_field "status" resp with
  | Some "error" ->
    Alcotest.failf "%s failed: %s (%s)" what
      (Option.value ~default:"?" (str_field "code" resp))
      (Option.value ~default:"" (str_field "message" resp))
  | _ -> ());
  resp

let retain cfg program =
  let resp = expect_ok "retain" (exec cfg (retain_frame program)) in
  match str_field "handle" resp with
  | Some h -> h
  | None -> Alcotest.fail "retain response carries no handle"

let delta cfg ~handle instrs = expect_ok "delta" (exec cfg (delta_frame ~handle instrs))

(* The central durability property: replaying the journal rebuilds the
   exact handle state.  Exercised as qcheck over random delta histories —
   a live engine applies a history, a second engine recovers from the
   journal alone, and an identical probe delta must then produce
   bit-identical programs on both. *)
let random_history rng =
  let n = 1 + Random.State.int rng 9 in
  List.init n (fun i ->
      let exprs = [| "a + b"; "a - b"; "b + c"; "a + c"; "c - a" |] in
      let e = exprs.(Random.State.int rng (Array.length exprs)) in
      [ Printf.sprintf "x := %s" e; Printf.sprintf "t%d := a + b" i ])

let prop_recovery_bit_identical =
  QCheck2.Test.make ~name:"recovery: replay rebuilds bit-identical handle state" ~count:15
    (QCheck2.Gen.int_bound 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let dir = fresh_dir "lcm-rec" in
      let live = engine_cfg dir in
      let h = retain live diamond_text in
      List.iter (fun instrs -> ignore (delta live ~handle:h instrs)) (random_history rng);
      (* The crash: a second engine sees only the journal directory. *)
      let reborn = engine_cfg dir in
      Engine.recover reborn;
      let probe = [ "x := b + c"; "probe := a + b" ] in
      let a = delta live ~handle:h probe in
      let b = delta reborn ~handle:h probe in
      (match (str_field "program" a, str_field "program" b) with
      | Some pa, Some pb when String.equal pa pb -> ()
      | Some pa, Some pb -> QCheck2.Test.fail_reportf "programs differ:\n%s\n----\n%s" pa pb
      | _ -> QCheck2.Test.fail_report "probe delta failed");
      (* The first post-recovery response — and only the first — must
         announce the rebuild. *)
      (match Json.member "recovered" b with
      | Some (Json.Bool true) -> ()
      | _ -> QCheck2.Test.fail_report "first post-recovery delta lacks recovered:true");
      (match Json.member "recovered" a with
      | None -> ()
      | Some _ -> QCheck2.Test.fail_report "live engine must not claim recovery");
      let b2 = delta reborn ~handle:h probe in
      (match Json.member "recovered" b2 with
      | None -> ()
      | Some _ -> QCheck2.Test.fail_report "recovered:true must clear after the first response");
      true)

let prop_recovery_torn_tail =
  (* kill -9 mid-append: the torn last record is cut off, and the
     rebuilt state must equal a live engine that never saw that delta. *)
  QCheck2.Test.make ~name:"recovery: torn tail rebuilds the acknowledged prefix" ~count:10
    (QCheck2.Gen.int_bound 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed + 31 |] in
      let dir_a = fresh_dir "lcm-ta" and dir_b = fresh_dir "lcm-tb" in
      let full = engine_cfg dir_a in
      let reference = engine_cfg dir_b in
      let ha = retain full diamond_text in
      let hb = retain reference diamond_text in
      if not (String.equal ha hb) then QCheck2.Test.fail_report "handle minting diverged";
      let history = random_history rng in
      let n = List.length history in
      List.iteri
        (fun i instrs ->
          ignore (delta full ~handle:ha instrs);
          (* The reference engine never sees the last delta — the one
             whose journal record we are about to tear. *)
          if i < n - 1 then ignore (delta reference ~handle:hb instrs))
        history;
      let path = Filename.concat dir_a (ha ^ ".journal") in
      let bytes = read_file path in
      (* Tear the final record: cut 1..8 bytes off the end. *)
      let cut = 1 + Random.State.int rng 8 in
      write_file path (String.sub bytes 0 (String.length bytes - cut));
      let reborn = engine_cfg dir_a in
      Engine.recover reborn;
      let probe = [ "x := c - a"; "probe := a + b" ] in
      let a = delta reborn ~handle:ha probe in
      let b = delta reference ~handle:hb probe in
      match (str_field "program" a, str_field "program" b) with
      | Some pa, Some pb when String.equal pa pb -> true
      | Some pa, Some pb -> QCheck2.Test.fail_reportf "programs differ:\n%s\n----\n%s" pa pb
      | _ -> QCheck2.Test.fail_report "probe delta failed")

let recovery_with_compaction () =
  (* A history long enough to compact twice must still rebuild exactly. *)
  let dir = fresh_dir "lcm-rc" in
  let live = engine_cfg ~compact_every:3 dir in
  let h = retain live diamond_text in
  for i = 1 to 8 do
    ignore (delta live ~handle:h [ "x := a + b"; Printf.sprintf "t%d := b + c" i ])
  done;
  let reborn = engine_cfg ~compact_every:3 dir in
  Engine.recover reborn;
  let probe = [ "x := a - b" ] in
  let a = delta live ~handle:h probe in
  let b = delta reborn ~handle:h probe in
  checks "compacted journal rebuilds identically"
    (Option.get (str_field "program" a))
    (Option.get (str_field "program" b));
  (* Compaction must actually have bounded the log: the journal file
     holds the snapshot plus at most compact_every patch records. *)
  let payloads, _, _ =
    let s = read_file (Filename.concat dir (h ^ ".journal")) in
    Journal.decode ~pos:(String.length Journal.file_magic) s
  in
  checkb "patch log bounded by compaction" true (List.length payloads <= 4)

let recovery_respects_eviction () =
  (* An evicted handle's journal is dropped: recovery must not resurrect
     a handle the client was already told is gone. *)
  let dir = fresh_dir "lcm-ev" in
  let live = engine_cfg ~handle_capacity:2 dir in
  let h1 = retain live diamond_text in
  let _h2 = retain live diamond_text in
  let _h3 = retain live diamond_text in
  (* capacity 2: h1 was evicted by h3's registration *)
  let reborn = engine_cfg ~handle_capacity:2 dir in
  Engine.recover reborn;
  let resp = exec reborn (delta_frame ~handle:h1 [ "x := a - b" ]) in
  checks "evicted handle stays unknown" "unknown_handle"
    (Option.value ~default:"(ok)" (str_field "code" resp))

let recovery_seq_monotonic () =
  (* New handles minted after a recovery must not collide with rebuilt
     ids. *)
  let dir = fresh_dir "lcm-seq" in
  let live = engine_cfg dir in
  let h1 = retain live diamond_text in
  let h2 = retain live diamond_text in
  let reborn = engine_cfg dir in
  Engine.recover reborn;
  let h3 = retain reborn diamond_text in
  checkb "fresh id after recovery" true (not (List.mem h3 [ h1; h2 ]))

let suite =
  [
    Alcotest.test_case "codec: crc32 known answers" `Quick codec_crc32_known;
    Alcotest.test_case "codec: record roundtrip" `Quick codec_roundtrip;
    Alcotest.test_case "codec: torn tail at every byte" `Quick codec_torn_tail;
    Alcotest.test_case "codec: corrupt payload ends the scan" `Quick codec_corrupt_payload;
    Alcotest.test_case "codec: bad tag ends the scan" `Quick codec_bad_tag;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_truncation;
    Alcotest.test_case "hjournal: base+patches roundtrip" `Quick hj_roundtrip;
    Alcotest.test_case "hjournal: compaction snapshots and truncates" `Quick hj_compaction;
    Alcotest.test_case "hjournal: mid-compaction crash leaves the journal" `Quick
      hj_mid_compaction_crash;
    Alcotest.test_case "hjournal: torn tail truncated on recovery" `Quick hj_torn_tail_truncated;
    Alcotest.test_case "hjournal: unreplayable files quarantined" `Quick hj_quarantine;
    Alcotest.test_case "hjournal: dropped journals stay gone" `Quick hj_drop;
    QCheck_alcotest.to_alcotest prop_recovery_bit_identical;
    QCheck_alcotest.to_alcotest prop_recovery_torn_tail;
    Alcotest.test_case "recovery: survives compaction" `Quick recovery_with_compaction;
    Alcotest.test_case "recovery: respects eviction" `Quick recovery_respects_eviction;
    Alcotest.test_case "recovery: handle ids stay unique" `Quick recovery_seq_monotonic;
  ]
