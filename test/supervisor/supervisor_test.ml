(* Supervisor tests run in their own executable: [Supervisor.run] forks,
   and OCaml 5 forbids [Unix.fork] once any domain has been spawned — the
   main test binary spawns domains in earlier suites.  Nothing here may
   create a domain before the forks happen. *)

module Stats = Lcm_server.Stats
module Supervisor = Lcm_server.Supervisor

let test_supervisor_restarts () =
  let dir = Filename.temp_file "lcm-sup" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let state = Filename.concat dir "state.json" in
  let marker = Filename.concat dir "lives" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ state; marker ];
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* The child crashes twice (tracked through a marker file, the only
         state forked children share), then exits cleanly. *)
      let thunk () =
        let lives =
          try int_of_string (String.trim (In_channel.with_open_text marker In_channel.input_all))
          with Sys_error _ | Failure _ -> 0
        in
        Out_channel.with_open_text marker (fun oc -> Printf.fprintf oc "%d\n" (lives + 1));
        (* _exit, not exit: a forked test child must not run the harness's
           at_exit machinery. *)
        if lives < 2 then Unix._exit 9 else Unix._exit 0
      in
      let cfg =
        {
          (Supervisor.default_config ~state_file:state) with
          Supervisor.backoff_base_ms = 5.;
          backoff_cap_ms = 20.;
          quiet = true;
        }
      in
      let code = Supervisor.run cfg thunk in
      Alcotest.(check int) "clean exit after recovery" 0 code;
      let reg = Stats.create () in
      Stats.load_file reg state;
      Alcotest.(check int) "restarts persisted" 2 (Stats.counter_value reg "supervisor.restarts_total"))

let test_supervisor_gives_up () =
  let state = Filename.temp_file "lcm-sup" ".state" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove state with Sys_error _ -> ())
    (fun () ->
      let cfg =
        {
          (Supervisor.default_config ~state_file:state) with
          Supervisor.max_restarts = 2;
          backoff_base_ms = 1.;
          backoff_cap_ms = 2.;
          quiet = true;
        }
      in
      let code = Supervisor.run cfg (fun () -> Unix._exit 3) in
      Alcotest.(check int) "propagates the child's exit code" 3 code;
      let reg = Stats.create () in
      Stats.load_file reg state;
      Alcotest.(check int) "all restarts recorded" 3 (Stats.counter_value reg "supervisor.restarts_total"))

let () =
  Alcotest.run "lcm-supervisor"
    [
      ( "supervisor",
        [
          Alcotest.test_case "restarts and recovers" `Quick test_supervisor_restarts;
          Alcotest.test_case "gives up after max restarts" `Quick test_supervisor_gives_up;
        ] );
    ]
