(* Supervisor tests run in their own executable: [Supervisor.run] forks,
   and OCaml 5 forbids [Unix.fork] once any domain has been spawned — the
   main test binary spawns domains in earlier suites.  Nothing here may
   create a domain before the forks happen. *)

module Stats = Lcm_server.Stats
module Supervisor = Lcm_server.Supervisor
module Fault = Lcm_support.Fault
module Json = Lcm_server.Json
module Frame = Lcm_server.Frame

let test_supervisor_restarts () =
  let dir = Filename.temp_file "lcm-sup" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let state = Filename.concat dir "state.json" in
  let marker = Filename.concat dir "lives" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ state; marker ];
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* The child crashes twice (tracked through a marker file, the only
         state forked children share), then exits cleanly. *)
      let thunk () =
        let lives =
          try int_of_string (String.trim (In_channel.with_open_text marker In_channel.input_all))
          with Sys_error _ | Failure _ -> 0
        in
        Out_channel.with_open_text marker (fun oc -> Printf.fprintf oc "%d\n" (lives + 1));
        (* _exit, not exit: a forked test child must not run the harness's
           at_exit machinery. *)
        if lives < 2 then Unix._exit 9 else Unix._exit 0
      in
      let cfg =
        {
          (Supervisor.default_config ~state_file:state) with
          Supervisor.backoff_base_ms = 5.;
          backoff_cap_ms = 20.;
          quiet = true;
        }
      in
      let code = Supervisor.run cfg thunk in
      Alcotest.(check int) "clean exit after recovery" 0 code;
      let reg = Stats.create () in
      Stats.load_file reg state;
      Alcotest.(check int) "restarts persisted" 2 (Stats.counter_value reg "supervisor.restarts_total"))

let test_supervisor_gives_up () =
  let state = Filename.temp_file "lcm-sup" ".state" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove state with Sys_error _ -> ())
    (fun () ->
      let cfg =
        {
          (Supervisor.default_config ~state_file:state) with
          Supervisor.max_restarts = 2;
          backoff_base_ms = 1.;
          backoff_cap_ms = 2.;
          quiet = true;
        }
      in
      let code = Supervisor.run cfg (fun () -> Unix._exit 3) in
      Alcotest.(check int) "propagates the child's exit code" 3 code;
      let reg = Stats.create () in
      Stats.load_file reg state;
      Alcotest.(check int) "all restarts recorded" 3 (Stats.counter_value reg "supervisor.restarts_total"))

(* ---- trace_id across a supervised restart ---- *)

(* Fault decisions are a pure function of (seed, point, occurrence), and a
   restarted child runs with seed + epoch * 0x9E3779B9.  Pick a seed whose
   schedule is, deterministically:

     child 1 (epoch 0): frame 1 passes the crash probe but is shed by
       queue.reject (its rejection spans reach the trace file); frame 2
       crashes the child mid-frame;
     child 2 (epoch 1): frame 3 passes both probes and runs.

   The client resends under one trace_id, so the per-trace file must end
   up holding spans from BOTH incarnations: the rejected admission from
   child 1 and the complete run from child 2. *)
let epoch_seed s e = s + (e * 0x9E3779B9)

let probe ~seed point occs =
  Fault.configure ~seed [ ("queue.reject", 0.5); ("daemon.crash", 0.5) ];
  let fired = List.init occs (fun _ -> Fault.fire point) in
  Fault.disable ();
  fired

let pick_restart_seed () =
  let rec go s =
    if s > 100_000 then Alcotest.fail "no reject/crash/recover seed found"
    else
      let crash0 = probe ~seed:(epoch_seed s 0) "daemon.crash" 2 in
      let reject0 = probe ~seed:(epoch_seed s 0) "queue.reject" 1 in
      let crash1 = probe ~seed:(epoch_seed s 1) "daemon.crash" 1 in
      let reject1 = probe ~seed:(epoch_seed s 1) "queue.reject" 1 in
      if crash0 = [ false; true ] && reject0 = [ true ] && crash1 = [ false ]
         && reject1 = [ false ]
      then s
      else go (s + 1)
  in
  go 1

let resolve_exe () =
  match Sys.getenv_opt "LCMOPT_EXE" with
  | Some p -> p
  | None ->
    let d = Filename.dirname Sys.executable_name in
    Filename.concat (Filename.dirname (Filename.dirname d)) "bin/lcmopt.exe"

let read_frame_timeout fd reader ~timeout_s =
  let chunk = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then None
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> None
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n -> (
          match
            List.filter_map
              (function Lcm_server.Frame.Frame f -> Some f | Lcm_server.Frame.Oversized _ -> None)
              (Frame.feed reader chunk n)
          with
          | f :: _ -> Some f
          | [] -> go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let test_trace_survives_restart () =
  let exe = resolve_exe () in
  if not (Sys.file_exists exe) then Alcotest.failf "daemon binary not found at %s" exe;
  let seed = pick_restart_seed () in
  let dir = Filename.temp_file "lcm-sup-trace" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let state = Filename.concat dir "state.json" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let req_r, req_w = Unix.pipe ~cloexec:true () in
      let resp_r, resp_w = Unix.pipe ~cloexec:true () in
      let env =
        Array.append (Unix.environment ())
          [| Printf.sprintf "LCM_CHAOS=%d:queue.reject=0.5,daemon.crash=0.5" seed |]
      in
      let pid =
        Unix.create_process_env exe
          [|
            exe; "serve"; "--stdio"; "--quiet"; "--supervise"; "--max-restarts"; "1000";
            "--restart-backoff-ms"; "20"; "--restart-cap-ms"; "100"; "--state-file"; state;
            "--trace-dir"; dir;
          |]
          env req_r resp_w Unix.stderr
      in
      Unix.close req_r;
      Unix.close resp_w;
      let reader = Frame.create ~max_frame:(1 lsl 20) in
      let trace_id = "restart-trace" in
      let send id =
        let f =
          Printf.sprintf
            "{\"id\":%d,\"trace_id\":\"%s\",\"op\":\"run\",\"program\":\"cfg loop (entry B0, exit \
             B1)\\nB0:\\n  goto B2\\nB1:\\n  halt\\nB2:\\n  x := a + b\\n  print x\\n  if p then \
             B2 else B1\\n\"}\n"
            id trace_id
        in
        ignore (Unix.write_substring req_w f 0 (String.length f))
      in
      (* One logical request, resent (same trace_id, fresh wire id) until
         the daemon answers ok — across the rejection, the crash, and the
         supervised restart behind them. *)
      let rec attempt id tries statuses =
        if tries > 12 then Alcotest.failf "never got an ok (statuses: %s)" (String.concat "," statuses);
        send id;
        match read_frame_timeout resp_r reader ~timeout_s:3.0 with
        | None -> attempt (id + 1) (tries + 1) ("timeout" :: statuses)
        | Some f -> (
          let j = Json.parse f in
          Alcotest.(check (option string)) "trace id echoed" (Some trace_id)
            (Option.bind (Json.member "trace_id" j) Json.to_string_opt);
          match Option.bind (Json.member "status" j) Json.to_string_opt with
          | Some "ok" -> List.rev (("ok" :: statuses) : string list)
          | Some s -> attempt (id + 1) (tries + 1) (s :: statuses)
          | None -> Alcotest.fail "response without status")
      in
      let statuses = attempt 1 1 [] in
      Alcotest.(check bool) "the request crossed at least one retry" true (List.length statuses >= 2);
      Unix.close req_w;
      let rec waitpid_retry () =
        match Unix.waitpid [] pid with
        | _, st -> st
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry ()
      in
      let status = waitpid_retry () in
      Unix.close resp_r;
      Alcotest.(check bool) "supervisor exited cleanly" true (status = Unix.WEXITED 0);
      (* The supervisor recorded at least the crash we scheduled. *)
      let reg = Stats.create () in
      Stats.load_file reg state;
      Alcotest.(check bool) "restart recorded" true
        (Stats.counter_value reg "supervisor.restarts_total" >= 1);
      let content =
        In_channel.with_open_text (Filename.concat dir (trace_id ^ ".trace.json"))
          In_channel.input_all
      in
      let events =
        match Json.parse (content ^ "null]") with
        | Json.List l -> List.filter (fun e -> e <> Json.Null) l
        | _ -> Alcotest.fail "trace file is not a JSON array"
      in
      let arg name e = Json.member name (Option.value (Json.member "args" e) ~default:Json.Null) in
      let pids = List.filter_map (fun e -> Option.bind (Json.member "pid" e) Json.to_int_opt) events in
      let distinct_pids = List.sort_uniq compare pids in
      Alcotest.(check bool) "spans from both incarnations" true (List.length distinct_pids >= 2);
      List.iter
        (fun e ->
          Alcotest.(check (option string)) "one trace id" (Some trace_id)
            (Option.bind (arg "trace_id" e) Json.to_string_opt))
        events;
      (* Span ids are per-process; parentage must resolve within each
         incarnation's events. *)
      List.iter
        (fun p ->
          let mine = List.filter (fun e -> Json.member "pid" e = Some (Json.Int p)) events in
          let ids = List.filter_map (fun e -> Option.bind (arg "span_id" e) Json.to_int_opt) mine in
          List.iter
            (fun e ->
              match Option.bind (arg "parent_id" e) Json.to_int_opt with
              | Some par -> Alcotest.(check bool) "parent resolves" true (par = -1 || List.mem par ids)
              | None -> Alcotest.fail "event without parent_id")
            mine)
        distinct_pids;
      let names =
        List.filter_map (fun e -> Option.bind (Json.member "name" e) Json.to_string_opt) events
      in
      Alcotest.(check bool) "both admissions present" true
        (List.length (List.filter (String.equal "daemon.admission") names) >= 2);
      Alcotest.(check bool) "the surviving attempt ran the cascade" true
        (List.mem "request" names && List.mem "lcm.latest" names))

let () =
  Alcotest.run "lcm-supervisor"
    [
      ( "supervisor",
        [
          Alcotest.test_case "restarts and recovers" `Quick test_supervisor_restarts;
          Alcotest.test_case "gives up after max restarts" `Quick test_supervisor_gives_up;
          Alcotest.test_case "trace_id survives retry + restart" `Quick test_trace_survives_restart;
        ] );
    ]
