(* The domain pool: batch execution, nesting, exception propagation, and
   the thread-safety of the two lazily-built shared structures the parallel
   engines rely on (Cfg's adjacency snapshot, Expr_pool's reading memo). *)

module Pool = Lcm_support.Pool
module Prng = Lcm_support.Prng
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Gencfg = Lcm_eval.Gencfg

let with_pool n f =
  let pool = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_runs_all_tasks () =
  List.iter
    (fun n ->
      with_pool n (fun pool ->
          let slots = Array.make 100 0 in
          Pool.run pool (List.init 100 (fun i () -> slots.(i) <- i + 1));
          Alcotest.(check int)
            (Printf.sprintf "all tasks ran (%d domains)" n)
            (100 * 101 / 2)
            (Array.fold_left ( + ) 0 slots)))
    [ 1; 2; 4 ]

let test_empty_batch () =
  with_pool 2 (fun pool -> Pool.run pool []);
  with_pool 1 (fun pool -> Pool.run pool [])

let test_nested_run () =
  (* Pass-level overlap on top of slice fan-out: tasks submit sub-batches
     to the same pool.  Must complete (help-drain, no deadlock) and run
     every leaf. *)
  List.iter
    (fun n ->
      with_pool n (fun pool ->
          let slots = Array.make 64 0 in
          Pool.run pool
            (List.init 8 (fun outer () ->
                 Pool.run pool
                   (List.init 8 (fun inner () -> slots.((outer * 8) + inner) <- 1))));
          Alcotest.(check int)
            (Printf.sprintf "nested leaves (%d domains)" n)
            64
            (Array.fold_left ( + ) 0 slots)))
    [ 1; 2; 4 ]

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun n ->
      with_pool n (fun pool ->
          let completed = ref 0 in
          let raised =
            try
              Pool.run pool
                (List.init 10 (fun i () ->
                     if i = 5 then raise (Boom i) else incr completed));
              false
            with Boom 5 -> true
          in
          Alcotest.(check bool) (Printf.sprintf "Boom re-raised (%d domains)" n) true raised;
          (* The batch still drained: the pool is reusable afterwards. *)
          Pool.run pool [ (fun () -> incr completed) ];
          Alcotest.(check int) "pool alive after failure" 10 !completed))
    [ 1; 4 ]

let test_parallel_for () =
  List.iter
    (fun n ->
      with_pool n (fun pool ->
          let slots = Array.make 1000 0 in
          Pool.parallel_for pool ~chunk:64 1000 (fun i -> slots.(i) <- slots.(i) + 1);
          Alcotest.(check int)
            (Printf.sprintf "each index once (%d domains)" n)
            1000
            (Array.fold_left ( + ) 0 slots)))
    [ 1; 3 ]

let test_default_pool () =
  let p = Pool.default () in
  Alcotest.(check bool) "default size positive" true (Pool.size p >= 1);
  Alcotest.(check bool) "default size = default_size" true (Pool.size p = Pool.default_size ());
  let hits = Array.make 8 false in
  Pool.run p (List.init 8 (fun i () -> hits.(i) <- true));
  Alcotest.(check bool) "default pool runs" true (Array.for_all Fun.id hits);
  (* Same pool on every call. *)
  Alcotest.(check bool) "memoized" true (p == Pool.default ())

(* --- regression: lazily-built shared state under domain fan-out -------- *)

(* Hammer the per-version adjacency snapshot: many domains force the lazy
   build of the same fresh graph at once, then each checks the snapshot it
   got for internal consistency.  Before the build was lock-guarded, racing
   first calls could observe a half-written cache. *)
let test_adjacency_hammer () =
  with_pool 4 (fun pool ->
      let rng = Prng.of_int 77177 in
      for _round = 1 to 25 do
        let g =
          Gencfg.random_cfg
            ~params:{ Gencfg.default_cfg_params with num_blocks = 30 }
            rng
        in
        let edge_counts = Array.make 8 (-1) in
        Pool.run pool
          (List.init 8 (fun i () ->
               (* First calls race to build; later calls must see the same
                  snapshot. *)
               let edges = Cfg.edges g in
               let ok =
                 List.for_all
                   (fun (s, d) ->
                     List.exists (Label.equal d) (Cfg.successors g s)
                     && List.exists (Label.equal s) (Cfg.predecessors g d))
                   edges
               in
               if ok then edge_counts.(i) <- List.length edges));
        Array.iter
          (fun c -> Alcotest.(check int) "same consistent edge list" (List.length (Cfg.edges g)) c)
          edge_counts
      done)

(* Hammer the reading memo: domains query overlapping variables on a fresh
   pool; every answer must equal the single-domain scan. *)
let test_reading_memo_hammer () =
  let vars = [ "a"; "b"; "c"; "d"; "e" ] in
  let exprs =
    List.concat_map
      (fun x -> List.map (fun y -> Expr.Binary (Expr.Add, Expr.Var x, Expr.Var y)) vars)
      vars
  in
  with_pool 4 (fun pool ->
      for _round = 1 to 25 do
        let p = Expr_pool.create () in
        List.iter (fun e -> ignore (Expr_pool.add p e)) exprs;
        (* Expected answers from a second, identical pool whose memo is
           filled single-domain; [p]'s memo is only ever touched by the
           racing tasks below. *)
        let q = Expr_pool.create () in
        List.iter (fun e -> ignore (Expr_pool.add q e)) exprs;
        let expected = List.map (Expr_pool.reading q) vars in
        let got = Array.make (4 * List.length vars) [] in
        Pool.run pool
          (List.concat_map
             (fun task ->
               List.mapi
                 (fun j v () -> got.((task * List.length vars) + j) <- Expr_pool.reading p v)
                 vars)
             [ 0; 1; 2; 3 ]);
        for task = 0 to 3 do
          List.iteri
            (fun j e ->
              Alcotest.(check (list int)) "reading under fan-out" e got.((task * List.length vars) + j))
            expected
        done
      done)

let suite =
  [
    Alcotest.test_case "run executes every task" `Quick test_runs_all_tasks;
    Alcotest.test_case "empty batch" `Quick test_empty_batch;
    Alcotest.test_case "nested run (no deadlock)" `Quick test_nested_run;
    Alcotest.test_case "task exceptions re-raised, pool survives" `Quick test_exception_propagates;
    Alcotest.test_case "parallel_for covers the range once" `Quick test_parallel_for;
    Alcotest.test_case "default pool" `Quick test_default_pool;
    Alcotest.test_case "adjacency snapshot under domain fan-out" `Quick test_adjacency_hammer;
    Alcotest.test_case "Expr_pool.reading memo under domain fan-out" `Quick test_reading_memo_hammer;
  ]
