(* DFS orders, dominators, natural loops, granulation, lowering. *)

module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order
module Dom = Lcm_cfg.Dom
module Loop = Lcm_cfg.Loop
module Lower = Lcm_cfg.Lower
module Granulate = Lcm_cfg.Granulate
module Validate = Lcm_cfg.Validate
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

(* entry → h; h → (b | x); b → h  (a while loop) *)
let make_loop () =
  let g = Cfg.create ~name:"loop" () in
  let h = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto h);
  Cfg.set_term g h (Cfg.Branch (Expr.Var "p", b, Cfg.exit_label g));
  Cfg.set_term g b (Cfg.Goto h);
  (g, h, b)

let test_rpo_entry_first () =
  let g, h, b = make_loop () in
  let order = Order.compute g in
  let rpo = Order.reverse_postorder order in
  Alcotest.(check int) "entry first" (Cfg.entry g) (List.hd rpo);
  Alcotest.(check bool) "header before body" true
    (Option.get (Order.rpo_index order h) < Option.get (Order.rpo_index order b));
  Alcotest.(check int) "postorder is reverse" (Cfg.entry g) (List.nth (Order.postorder order) 3)

let test_back_edges () =
  let g, h, b = make_loop () in
  let order = Order.compute g in
  Alcotest.(check (list (pair int int))) "one back edge" [ (b, h) ] (Order.back_edges g order)

let test_unreachable_not_in_order () =
  let g = Cfg.create () in
  let dead = Cfg.add_block g ~instrs:[] ~term:(Cfg.Goto (Cfg.exit_label g)) in
  let order = Order.compute g in
  Alcotest.(check bool) "dead not reachable" false (Order.is_reachable order dead)

let test_dominators_diamond () =
  let g = Cfg.create () in
  let a = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let c = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let d = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Cfg.set_term g a (Cfg.Branch (Expr.Var "p", b, c));
  Cfg.set_term g b (Cfg.Goto d);
  Cfg.set_term g c (Cfg.Goto d);
  Cfg.set_term g d (Cfg.Goto (Cfg.exit_label g));
  let dom = Dom.compute g in
  Alcotest.(check (option int)) "idom b = a" (Some a) (Dom.idom dom b);
  Alcotest.(check (option int)) "idom c = a" (Some a) (Dom.idom dom c);
  Alcotest.(check (option int)) "idom d = a (not b or c)" (Some a) (Dom.idom dom d);
  Alcotest.(check (option int)) "entry has no idom" None (Dom.idom dom (Cfg.entry g));
  Alcotest.(check bool) "a dominates d" true (Dom.dominates dom a d);
  Alcotest.(check bool) "b does not dominate d" false (Dom.dominates dom b d);
  Alcotest.(check bool) "reflexive" true (Dom.dominates dom d d);
  Alcotest.(check int) "a's dominated set" 5 (List.length (Dom.dominated_by dom a))

let test_loop_detection () =
  let g, h, b = make_loop () in
  let loops = Loop.compute g in
  match Loop.loops loops with
  | [ lp ] ->
    Alcotest.(check int) "header" h lp.Loop.header;
    Alcotest.(check bool) "body has b" true (Label.Set.mem b lp.Loop.body);
    Alcotest.(check int) "body size" 2 (Label.Set.cardinal lp.Loop.body);
    Alcotest.(check int) "depth of body" 1 (Loop.depth loops b);
    Alcotest.(check int) "depth outside" 0 (Loop.depth loops (Cfg.entry g));
    Alcotest.(check (list (pair int int))) "entry edges" [ (Cfg.entry g, h) ] (Loop.entry_edges g lp)
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_nested_loops () =
  let src =
    "function f(n, m) { i = 0; while (i < n) { j = 0; while (j < m) { j = j + 1; } i = i + 1; } \
     return i; }"
  in
  let g = Lower.parse_and_lower_func src in
  let loops = Loop.compute g in
  Alcotest.(check int) "two loops" 2 (List.length (Loop.loops loops));
  Alcotest.(check int) "max depth" 2 (Loop.max_depth loops)

let test_lower_diamond_shape () =
  let g = Lower.parse_and_lower_func "function f(a, b, p) { if (p > 0) { x = a + b; } y = a + b; return y; }" in
  Alcotest.(check (list string)) "valid" [] (Validate.check g);
  (* entry, exit, cond block, then-arm, (empty else), join. *)
  Alcotest.(check bool) "has branch" true
    (List.exists
       (fun l -> match Cfg.term g l with Cfg.Branch _ -> true | Cfg.Goto _ | Cfg.Halt -> false)
       (Cfg.labels g));
  Alcotest.(check int) "two candidate occurrences of a+b plus condition" 3
    (Cfg.num_candidate_occurrences g)

let test_lower_return_var () =
  let g = Lower.parse_and_lower_func "function f() { return 7; }" in
  let has_ret =
    List.exists
      (fun l ->
        List.exists
          (fun i -> match Instr.defs i with Some v -> String.equal v Lower.return_var | None -> false)
          (Cfg.instrs g l))
      (Cfg.labels g)
  in
  Alcotest.(check bool) "assigns return var" true has_ret

let test_lower_dead_code_after_return () =
  let g = Lower.parse_and_lower_func "function f() { return 1; x = 2; }" in
  Alcotest.(check (list string)) "valid (dead code removed)" [] (Validate.check g);
  let assigns_x =
    List.exists
      (fun l ->
        List.exists
          (fun i -> match Instr.defs i with Some v -> String.equal v "x" | None -> false)
          (Cfg.instrs g l))
      (Cfg.labels g)
  in
  Alcotest.(check bool) "x assignment unreachable, removed" false assigns_x

let test_lower_while_shape () =
  let g = Lower.parse_and_lower_func "function f(n) { i = 0; while (i < n) { i = i + 1; } return i; }" in
  let loops = Loop.compute g in
  Alcotest.(check int) "one loop" 1 (List.length (Loop.loops loops))

let test_lower_do_while_shape () =
  let g = Lower.parse_and_lower_func "function f(n) { i = 0; do { i = i + 1; } while (i < n); return i; }" in
  let loops = Loop.compute g in
  Alcotest.(check int) "one loop" 1 (List.length (Loop.loops loops))

let test_lower_temp_no_collision () =
  (* A user variable that looks like a temp prefix must not collide. *)
  let g = Lower.parse_and_lower_func "function f(_t0) { x = (_t0 + 1) * 2; return x; }" in
  Alcotest.(check (list string)) "valid" [] (Validate.check g);
  let vars = Cfg.all_vars g in
  Alcotest.(check bool) "user var present" true (List.mem "_t0" vars);
  (* Lowering needed a temp for the nested expression; it must be distinct. *)
  Alcotest.(check bool) "fresh temp distinct" true (List.exists (fun v -> String.length v > 3 && String.sub v 0 3 = "_t_") vars)

let test_granulate () =
  let g = Lower.parse_and_lower_func "function f(a, b) { x = a + b; y = a * b; z = x + y; return z; }" in
  let gran = Granulate.run g in
  Alcotest.(check bool) "granular" true (Granulate.is_granular gran);
  Alcotest.(check bool) "original not granular" false (Granulate.is_granular g);
  Alcotest.(check int) "same instruction count" (Cfg.num_instrs g) (Cfg.num_instrs gran);
  Alcotest.(check (list string)) "valid" [] (Validate.check gran)

let test_granulate_preserves_semantics () =
  let src = "function f(a, b) { s = 0; i = 0; while (i < 5) { s = s + a * b; i = i + 1; } return s; }" in
  let g = Lower.parse_and_lower_func src in
  let gran = Granulate.run g in
  let result =
    Lcm_eval.Oracle.semantics ~inputs:[ "a"; "b" ] (Lcm_support.Prng.of_int 3) ~original:g
      ~transformed:gran
  in
  Alcotest.(check bool) "same behaviour" true (Result.is_ok result)

let suite =
  [
    Alcotest.test_case "rpo entry first" `Quick test_rpo_entry_first;
    Alcotest.test_case "back edges" `Quick test_back_edges;
    Alcotest.test_case "unreachable blocks" `Quick test_unreachable_not_in_order;
    Alcotest.test_case "dominators on diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "loop detection" `Quick test_loop_detection;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "lower: diamond shape" `Quick test_lower_diamond_shape;
    Alcotest.test_case "lower: return variable" `Quick test_lower_return_var;
    Alcotest.test_case "lower: dead code after return" `Quick test_lower_dead_code_after_return;
    Alcotest.test_case "lower: while loop" `Quick test_lower_while_shape;
    Alcotest.test_case "lower: do-while loop" `Quick test_lower_do_while_shape;
    Alcotest.test_case "lower: temp prefix avoids collision" `Quick test_lower_temp_no_collision;
    Alcotest.test_case "granulate" `Quick test_granulate;
    Alcotest.test_case "granulate preserves semantics" `Quick test_granulate_preserves_semantics;
  ]
