(* Lexer and parser for MiniImp. *)

module Ast = Lcm_ir.Ast
module Expr = Lcm_ir.Expr
module Lexer = Lcm_ir.Lexer
module Parser = Lcm_ir.Parser

let parse_e = Parser.parse_expr

let test_tokens () =
  let toks = Lexer.tokenize "x = a + 12; // comment\nwhile" in
  let kinds = List.map (fun (s : Lexer.spanned) -> s.token) toks in
  Alcotest.(check bool) "token stream" true
    (kinds
    = [
        Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.IDENT "a"; Lexer.PLUS; Lexer.INT 12; Lexer.SEMI;
        Lexer.KW_WHILE; Lexer.EOF;
      ])

let test_token_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check (pair int int)) "a at 1:1" (1, 1) (a.Lexer.line, a.Lexer.col);
    Alcotest.(check (pair int int)) "b at 2:3" (2, 3) (b.Lexer.line, b.Lexer.col)
  | _ -> Alcotest.fail "expected three tokens"

let test_lex_error () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "x = $;");
       false
     with Lexer.Lex_error (_, 1, 5) -> true)

let test_two_char_operators () =
  let toks = Lexer.tokenize "<= >= == != < > = !" in
  let kinds = List.map (fun (s : Lexer.spanned) -> s.token) toks in
  Alcotest.(check bool) "operators" true
    (kinds
    = [ Lexer.LE; Lexer.GE; Lexer.EQ; Lexer.NE; Lexer.LT; Lexer.GT; Lexer.ASSIGN; Lexer.BANG; Lexer.EOF ])

let test_precedence () =
  (* a + b * c parses as a + (b * c) *)
  match parse_e "a + b * c" with
  | Ast.Binary (Expr.Add, Ast.Var "a", Ast.Binary (Expr.Mul, Ast.Var "b", Ast.Var "c")) -> ()
  | e -> Alcotest.failf "unexpected parse: %s" (Format.asprintf "%a" Ast.pp_expr e)

let test_comparison_level () =
  match parse_e "a + 1 < b * 2" with
  | Ast.Binary (Expr.Lt, Ast.Binary (Expr.Add, _, _), Ast.Binary (Expr.Mul, _, _)) -> ()
  | e -> Alcotest.failf "unexpected parse: %s" (Format.asprintf "%a" Ast.pp_expr e)

let test_left_associativity () =
  match parse_e "a - b - c" with
  | Ast.Binary (Expr.Sub, Ast.Binary (Expr.Sub, Ast.Var "a", Ast.Var "b"), Ast.Var "c") -> ()
  | e -> Alcotest.failf "unexpected parse: %s" (Format.asprintf "%a" Ast.pp_expr e)

let test_parens_and_unary () =
  match parse_e "-(a + b) * !c" with
  | Ast.Binary (Expr.Mul, Ast.Unary (Expr.Neg, Ast.Binary (Expr.Add, _, _)), Ast.Unary (Expr.Not, Ast.Var "c"))
    -> ()
  | e -> Alcotest.failf "unexpected parse: %s" (Format.asprintf "%a" Ast.pp_expr e)

let test_function () =
  let f = Parser.parse_func "function f(a, b) { x = a + b; return x; }" in
  Alcotest.(check string) "name" "f" f.Ast.name;
  Alcotest.(check (list string)) "params" [ "a"; "b" ] f.Ast.params;
  Alcotest.(check int) "two statements" 2 (List.length f.Ast.body)

let test_no_params () =
  let f = Parser.parse_func "function g() { return 1; }" in
  Alcotest.(check (list string)) "no params" [] f.Ast.params

let test_control_flow () =
  let f =
    Parser.parse_func
      "function h(n) { s = 0; i = 0; while (i < n) { if (s > 10) { s = 0; } else { s = s + i; } i = i \
       + 1; } do { s = s - 1; } while (s > 0); print s; return s; }"
  in
  Alcotest.(check int) "statements" 6 (List.length f.Ast.body)

let test_parse_errors () =
  let fails src =
    try
      ignore (Parser.parse_func src);
      false
    with Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing semi" true (fails "function f() { x = 1 }");
  Alcotest.(check bool) "missing brace" true (fails "function f() { x = 1;");
  Alcotest.(check bool) "trailing" true (fails "function f() { return 1; } extra");
  Alcotest.(check bool) "keyword as statement" true (fails "function f() { else; }");
  Alcotest.(check bool) "empty expr" true (fails "function f() { x = ; }")

let test_error_position () =
  try
    ignore (Parser.parse_func "function f() {\n  x = ;\n}");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error (_, line, _) -> Alcotest.(check int) "line" 2 line

let test_roundtrip () =
  (* print ∘ parse is a fixpoint after one iteration *)
  let src = "function f(a, b) {\n  x = a + b * 2;\n  if (x > 0) {\n    print x;\n  }\n  return x;\n}" in
  let f1 = Parser.parse_func src in
  let printed = Ast.to_string [ f1 ] in
  let f2 = Parser.parse_func printed in
  Alcotest.(check string) "stable" printed (Ast.to_string [ f2 ])

let test_program_multi () =
  let p = Parser.parse_program "function f() { return 1; } function g() { return 2; }" in
  Alcotest.(check (list string)) "names" [ "f"; "g" ] (List.map (fun f -> f.Ast.name) p)

(* Fuzz: arbitrary byte soup must produce a clean error, never a crash or
   a hang. *)
let prop_parser_total =
  let gen =
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 120))
  in
  QCheck2.Test.make ~name:"parser is total on garbage" ~count:300 gen (fun src ->
      match Parser.parse_func src with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true)

(* Fuzz with plausible tokens: higher chance of reaching deep parser
   states. *)
let prop_parser_total_tokens =
  let word =
    QCheck2.Gen.oneofl
      [
        "function"; "if"; "else"; "while"; "do"; "print"; "return"; "x"; "y"; "42"; "("; ")"; "{";
        "}"; ";"; ","; "="; "=="; "+"; "-"; "*"; "<"; "!";
      ]
  in
  let gen = QCheck2.Gen.(map (String.concat " ") (list_size (0 -- 40) word)) in
  QCheck2.Test.make ~name:"parser is total on token soup" ~count:300 gen (fun src ->
      match Parser.parse_func src with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true)

let suite =
  [
    Alcotest.test_case "token stream" `Quick test_tokens;
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_parser_total_tokens;
    Alcotest.test_case "token positions" `Quick test_token_positions;
    Alcotest.test_case "lex error position" `Quick test_lex_error;
    Alcotest.test_case "two-char operators" `Quick test_two_char_operators;
    Alcotest.test_case "precedence mul over add" `Quick test_precedence;
    Alcotest.test_case "comparison lowest" `Quick test_comparison_level;
    Alcotest.test_case "left associativity" `Quick test_left_associativity;
    Alcotest.test_case "parens and unary" `Quick test_parens_and_unary;
    Alcotest.test_case "function header" `Quick test_function;
    Alcotest.test_case "no params" `Quick test_no_params;
    Alcotest.test_case "control flow statements" `Quick test_control_flow;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error position" `Quick test_error_position;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "multi-function program" `Quick test_program_multi;
  ]
