(* The serving subsystem: JSON, framing, bounded queue, metrics registry,
   engine semantics (deadlines, panic isolation, parallel cap), and the
   daemon end to end over pipes — including the acceptance scenarios:
   malformed frame, oversized frame, a pathological request hitting its
   deadline, overload rejection, and drain-while-a-batch-is-in-flight. *)

module Json = Lcm_server.Json
module Frame = Lcm_server.Frame
module Bqueue = Lcm_server.Bqueue
module Stats = Lcm_server.Stats
module Protocol = Lcm_server.Protocol
module Engine = Lcm_server.Engine
module Daemon = Lcm_server.Daemon
module Pool = Lcm_support.Pool
module Cfg = Lcm_cfg.Cfg
module Registry = Lcm_eval.Registry
module Suites = Lcm_eval.Suites
module Lcm_edge = Lcm_core.Lcm_edge

let now = Unix.gettimeofday

(* ---- Json ---- *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[1,2,3]";
      "{\"a\":1,\"b\":[true,null],\"c\":\"x\\ny\"}";
      "{\"nested\":{\"deep\":{\"deeper\":[{\"k\":-42}]}},\"f\":1.5}";
      "\"quote \\\" backslash \\\\ tab \\t\"";
    ]
  in
  List.iter
    (fun s ->
      let v = Json.parse s in
      let v' = Json.parse (Json.to_string v) in
      Alcotest.(check bool) ("roundtrip " ^ s) true (v = v'))
    cases

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | _ -> Alcotest.failf "expected a parse error for %S" s
      | exception Json.Parse_error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "nul"; "\"open"; "{} trailing"; "{\"a\" 1}" ]

let test_json_accessors () =
  let j = Json.parse "{\"i\":3,\"f\":2.0,\"s\":\"x\",\"b\":false}" in
  Alcotest.(check (option int)) "int" (Some 3) (Option.bind (Json.member "i" j) Json.to_int_opt);
  Alcotest.(check (option int)) "integral float" (Some 2) (Option.bind (Json.member "f" j) Json.to_int_opt);
  Alcotest.(check (option string)) "string" (Some "x") (Option.bind (Json.member "s" j) Json.to_string_opt);
  Alcotest.(check (option bool)) "bool" (Some false) (Option.bind (Json.member "b" j) Json.to_bool_opt);
  Alcotest.(check bool) "missing" true (Json.member "zzz" j = None)

(* ---- Frame ---- *)

let feed_string r s =
  let b = Bytes.of_string s in
  Frame.feed r b (Bytes.length b)

let test_frame_chunking () =
  let r = Frame.create ~max_frame:1024 in
  Alcotest.(check bool) "partial" true (feed_string r "hel" = []);
  (match feed_string r "lo\nwor" with
  | [ Frame.Frame "hello" ] -> ()
  | _ -> Alcotest.fail "expected [hello]");
  (match feed_string r "ld\nx\n" with
  | [ Frame.Frame "world"; Frame.Frame "x" ] -> ()
  | _ -> Alcotest.fail "expected [world; x]");
  Alcotest.(check int) "nothing pending" 0 (Frame.pending r)

let test_frame_oversized () =
  let r = Frame.create ~max_frame:8 in
  (* One over-limit line, then a healthy one: the reader must recover. *)
  let events = feed_string r "0123456789abcdef\nok\n" in
  (match events with
  | [ Frame.Oversized n; Frame.Frame "ok" ] -> Alcotest.(check bool) "count" true (n >= 9)
  | _ -> Alcotest.fail "expected [Oversized; ok]");
  (* Oversized split across feeds. *)
  let r = Frame.create ~max_frame:4 in
  Alcotest.(check bool) "silent" true (feed_string r "aaaaaaa" = []);
  (match feed_string r "bbb\nfine\n" with
  | [ Frame.Oversized _; Frame.Frame "fine" ] -> ()
  | _ -> Alcotest.fail "expected [Oversized; fine]")

(* ---- Bqueue ---- *)

let test_bqueue () =
  let q = Bqueue.create ~capacity:3 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "push 3" true (Bqueue.try_push q 3);
  Alcotest.(check bool) "push 4 rejected" false (Bqueue.try_push q 4);
  Alcotest.(check (list int)) "fifo batch" [ 1; 2 ] (Bqueue.pop_batch q ~max:2);
  Alcotest.(check bool) "room again" true (Bqueue.try_push q 5);
  Alcotest.(check (list int)) "rest" [ 3; 5 ] (Bqueue.pop_batch q ~max:10);
  Alcotest.(check (list int)) "empty" [] (Bqueue.pop_batch q ~max:10)

(* ---- Stats ---- *)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.incr ~by:40 s "a";
  Alcotest.(check int) "sum" 42 (Stats.counter_value s "a");
  Alcotest.(check int) "absent" 0 (Stats.counter_value s "b")

let test_stats_quantiles () =
  let s = Stats.create () in
  Alcotest.(check bool) "empty" true (Stats.quantile_ms s "lat" 0.5 = None);
  (* 100 samples at ~2ms, 5 at ~80ms: p50 in the (1, 2.5] bucket, p99 in
     the (50, 100] bucket. *)
  for _ = 1 to 100 do
    Stats.observe_ms s "lat" 2.0
  done;
  for _ = 1 to 5 do
    Stats.observe_ms s "lat" 80.0
  done;
  let get q = Option.get (Stats.quantile_ms s "lat" q) in
  Alcotest.(check bool) "p50 bucket" true (get 0.5 > 1.0 && get 0.5 <= 2.5);
  Alcotest.(check bool) "p99 bucket" true (get 0.99 > 50.0 && get 0.99 <= 100.0);
  (* Snapshot carries both instrument kinds. *)
  Stats.incr s "c";
  let snap = Stats.snapshot s in
  (match Option.bind (Json.member "counters" snap) (Json.member "c") with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "counter missing from snapshot");
  (match Option.bind (Json.member "histograms" snap) (Json.member "lat") with
  | Some h ->
    Alcotest.(check (option int)) "count" (Some 105) (Option.bind (Json.member "count" h) Json.to_int_opt)
  | None -> Alcotest.fail "histogram missing from snapshot")

(* ---- Protocol ---- *)

let ok_req frame =
  match Protocol.parse_request frame with
  | Ok r -> r
  | Error (_, _, _, m) -> Alcotest.failf "unexpected parse failure: %s" m

let test_protocol_parse () =
  let r = ok_req "{\"id\":7,\"program\":\"cfg x (entry B0, exit B1)\"}" in
  Alcotest.(check bool) "id echoed" true (r.Protocol.id = Json.Int 7);
  (match r.Protocol.op with
  | Protocol.Run run ->
    Alcotest.(check string) "default algorithm" "lcm-edge" run.Protocol.algorithm;
    Alcotest.(check bool) "format sniffed as cfg" true (run.Protocol.format = "cfg")
  | _ -> Alcotest.fail "expected run op");
  let r = ok_req "{\"op\":\"run\",\"program\":\"function f() { return 1; }\"}" in
  (match r.Protocol.op with
  | Protocol.Run run ->
    Alcotest.(check bool) "format sniffed as miniimp" true (run.Protocol.format = "miniimp")
  | _ -> Alcotest.fail "expected run op");
  (match Protocol.parse_request "{\"op\":\"nope\"}" with
  | Error (_, _, Protocol.Bad_request, _) -> ()
  | _ -> Alcotest.fail "unknown op must be bad_request");
  (match Protocol.parse_request "[1,2]" with
  | Error (_, _, Protocol.Bad_request, _) -> ()
  | _ -> Alcotest.fail "non-object must be bad_request");
  (match Protocol.parse_request "{\"id\":9,\"op\":\"run\"}" with
  | Error (Json.Int 9, _, Protocol.Bad_request, _) -> ()
  | _ -> Alcotest.fail "missing program must be bad_request with id");
  (* trace_id: parsed when present, recovered even on a parse failure. *)
  let r = ok_req "{\"id\":1,\"trace_id\":\"t-cli\",\"program\":\"cfg x (entry B0, exit B1)\"}" in
  Alcotest.(check (option string)) "trace_id parsed" (Some "t-cli") r.Protocol.trace_id;
  (match Protocol.parse_request "{\"id\":9,\"trace_id\":\"t-err\",\"op\":\"run\"}" with
  | Error (Json.Int 9, Some "t-err", Protocol.Bad_request, _) -> ()
  | _ -> Alcotest.fail "trace_id must be recovered on parse failure")

(* ---- Engine ---- *)

let diamond_text = Lcm_cfg.Cfg_text.to_string (Suites.graph (Option.get (Suites.find "diamond")))

let run_request ?(algorithm = "lcm-edge") ?(workers = 1) program =
  {
    Protocol.id = Json.Int 1;
    op =
      Protocol.Run
        {
          Protocol.program;
          format = "cfg";
          func = None;
          algorithm;
          simplify = false;
          workers;
          validate = false;
          retain = false;
        };
    deadline_ms = None;
    trace_id = None;
  }

let engine_exec ?lookup ?pool ?deadline req =
  let stats = Stats.create () in
  let cfg = Engine.default_config ?pool stats in
  let cfg = match lookup with Some l -> { cfg with Engine.lookup = l } | None -> cfg in
  let t = now () in
  Json.parse (Engine.execute cfg ~now ~arrival:t ~deadline req)

let field name j = Json.member name j
let str_field name j = Option.bind (field name j) Json.to_string_opt

let test_engine_matches_oneshot () =
  (* The serving pipeline must produce bit-identical programs to the
     one-shot path (`lcmopt run` prints Cfg.to_string of the same calls). *)
  List.iter
    (fun algorithm ->
      let resp = engine_exec (run_request ~algorithm diamond_text) in
      Alcotest.(check (option string)) (algorithm ^ " status") (Some "ok") (str_field "status" resp);
      let expected =
        Cfg.to_string ((Option.get (Registry.find algorithm)).Registry.run (Lcm_cfg.Cfg_text.parse diamond_text))
      in
      Alcotest.(check (option string)) (algorithm ^ " program") (Some expected) (str_field "program" resp))
    [ "lcm-edge"; "bcm-edge"; "morel-renvoise"; "identity" ]

let test_engine_parallel_capped () =
  let pool = Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let resp = engine_exec ~pool (run_request ~workers:8 diamond_text) in
      Alcotest.(check (option string)) "status" (Some "ok") (str_field "status" resp);
      Alcotest.(check (option int)) "workers capped at pool size" (Some 2)
        (Option.bind (field "workers" resp) Json.to_int_opt);
      let seq = engine_exec (run_request diamond_text) in
      Alcotest.(check (option string)) "parallel ≡ sequential" (str_field "program" seq)
        (str_field "program" resp))

let test_engine_errors () =
  let code resp = str_field "code" resp in
  let resp = engine_exec (run_request ~algorithm:"nope" diamond_text) in
  Alcotest.(check (option string)) "unknown algorithm" (Some "bad_request") (code resp);
  let resp = engine_exec (run_request "cfg broken (") in
  Alcotest.(check (option string)) "bad cfg" (Some "parse_error") (code resp);
  let resp =
    engine_exec
      {
        Protocol.id = Json.Null;
        op =
          Protocol.Run
            {
              Protocol.program = "function f( {";
              format = "miniimp";
              func = None;
              algorithm = "lcm-edge";
              simplify = false;
              workers = 1;
              validate = false;
              retain = false;
            };
        deadline_ms = None;
        trace_id = None;
      }
  in
  Alcotest.(check (option string)) "bad miniimp" (Some "parse_error") (code resp)

let test_engine_deadline () =
  (* Already-expired deadline: rejected before any phase runs. *)
  let resp = engine_exec ~deadline:(now () -. 1.) (run_request diamond_text) in
  Alcotest.(check (option string)) "expired" (Some "deadline_exceeded") (str_field "code" resp);
  (* A "non-terminating" request (long sleep) is cancelled cooperatively. *)
  let t0 = now () in
  let resp =
    engine_exec ~deadline:(t0 +. 0.05)
      { Protocol.id = Json.Null; op = Protocol.Sleep 60_000.; deadline_ms = None; trace_id = None }
  in
  let elapsed = now () -. t0 in
  Alcotest.(check (option string)) "cancelled" (Some "deadline_exceeded") (str_field "code" resp);
  Alcotest.(check bool) "cancelled promptly, not after 60s" true (elapsed < 5.)

let test_engine_panic_isolation () =
  (* An algorithm that dies must not take the daemon with it — the engine
     degrades through the tier ladder and serves the identity program,
     marked as such, rather than erroring. *)
  let boom = Lcm_core.Pass.v "boom" (fun _ _ -> failwith "boom") in
  let crash =
    Some
      {
        (Option.get (Registry.find "identity")) with
        Registry.pipeline = Lcm_core.Pass.Pipeline.v "boom" [ boom ];
        run = (fun _ -> failwith "boom");
      }
  in
  (* lcm-edge's sequential tier bypasses the registry (it needs the spec),
     so aim the crashing stub at an algorithm served through the entry. *)
  let resp =
    engine_exec ~lookup:(fun _ -> crash) (run_request ~algorithm:"morel-renvoise" diamond_text)
  in
  Alcotest.(check (option string)) "status" (Some "ok") (str_field "status" resp);
  Alcotest.(check (option string)) "degraded to identity" (Some "identity")
    (str_field "degraded" resp);
  let original = Cfg.to_string (Lcm_cfg.Cfg_text.parse diamond_text) in
  Alcotest.(check (option string)) "identity program" (Some original) (str_field "program" resp)

(* ---- Daemon end to end (pipes, daemon on its own domain) ---- *)

type harness = {
  w_in : Unix.file_descr;  (* we write requests here *)
  next_line : unit -> string option;  (* blocking reader of response lines *)
}

let make_line_reader fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec next () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear buf;
      Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
    | None ->
      (match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        next ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ())
  in
  next

(* Run [f] against a fresh in-process daemon; returns [f]'s result and the
   response lines produced after [f] (it drains on end-of-input exactly as
   `lcmopt serve --stdio` does on a closed stdin). *)
let with_daemon ?(cfg = Daemon.default_config ()) f =
  let cfg = { cfg with Daemon.quiet = true; workers = 1; stats = Stats.create () } in
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  let d = Domain.spawn (fun () -> Daemon.serve_fds cfg ~fd_in:req_r ~fd_out:resp_w) in
  let next_line = make_line_reader resp_r in
  let h = { w_in = req_w; next_line } in
  let result = f h in
  (try Unix.close req_w with Unix.Unix_error _ -> ());
  Domain.join d;
  Unix.close resp_w;
  let rec drain acc = match next_line () with Some l -> drain (l :: acc) | None -> List.rev acc in
  let rest = drain [] in
  Unix.close req_r;
  Unix.close resp_r;
  (result, rest)

let send h frame = Frame.write_frame h.w_in frame

let response_code line =
  let j = Json.parse line in
  match (str_field "status" j, str_field "code" j) with
  | Some "ok", _ -> "ok"
  | Some "error", Some c -> c
  | _ -> "???"

let test_daemon_end_to_end () =
  let (), responses =
    with_daemon (fun h ->
        send h (Printf.sprintf "{\"id\":1,\"op\":\"run\",\"program\":%s}"
                  (Json.to_string (Json.String diamond_text)));
        send h "this is not json";
        send h "{\"id\":2,\"op\":\"run\",\"algorithm\":\"nope\",\"program\":\"cfg x\"}";
        send h "{\"id\":3,\"op\":\"stats\"}")
  in
  let codes = List.map response_code responses in
  (* stats/ping bypass the queue, so the stats answer may precede the run
     answers; compare as multisets. *)
  Alcotest.(check (list string)) "codes" [ "bad_request"; "bad_request"; "ok"; "ok" ]
    (List.sort String.compare codes);
  (* The ok run response matches the one-shot transformation bit for bit. *)
  let run_resp =
    List.find_map
      (fun l ->
        let j = Json.parse l in
        if str_field "op" j = Some "run" && str_field "status" j = Some "ok" then Some j else None)
      responses
  in
  (match run_resp with
  | Some j ->
    let expected = Cfg.to_string (fst (Lcm_edge.transform (Lcm_cfg.Cfg_text.parse diamond_text))) in
    Alcotest.(check (option string)) "bit-identical program" (Some expected) (str_field "program" j)
  | None -> Alcotest.fail "no ok run response")

let test_daemon_oversized () =
  let cfg = { (Daemon.default_config ()) with Daemon.max_frame = 64 } in
  let (), responses =
    with_daemon ~cfg (fun h ->
        send h (String.make 200 'x');
        send h "{\"id\":1,\"op\":\"ping\"}")
  in
  Alcotest.(check (list string)) "oversized then survives" [ "ok"; "oversized" ]
    (List.sort String.compare (List.map response_code responses))

let test_daemon_overload () =
  (* Queue of 2, batches of 1: five instant sleeps written in one pipe
     write arrive in one read, so three of them must be rejected at
     admission with `overloaded`. *)
  let cfg = { (Daemon.default_config ()) with Daemon.queue_capacity = 2; batch_max = 1 } in
  let (), responses =
    with_daemon ~cfg (fun h ->
        let frames =
          List.init 5 (fun i ->
              Printf.sprintf "{\"id\":%d,\"op\":\"sleep\",\"duration_ms\":30}" i)
        in
        Frame.write_all h.w_in (String.concat "\n" frames ^ "\n"))
  in
  let codes = List.map response_code responses in
  Alcotest.(check int) "all answered" 5 (List.length codes);
  Alcotest.(check int) "two served" 2 (List.length (List.filter (( = ) "ok") codes));
  Alcotest.(check int) "three rejected" 3 (List.length (List.filter (( = ) "overloaded") codes))

let test_daemon_queued_deadline () =
  (* Item 2's deadline expires while item 1 occupies the (single-slot)
     dispatcher: it must come back deadline_exceeded, not run late. *)
  let cfg = { (Daemon.default_config ()) with Daemon.batch_max = 1 } in
  let (), responses =
    with_daemon ~cfg (fun h ->
        Frame.write_all h.w_in
          ("{\"id\":1,\"op\":\"sleep\",\"duration_ms\":300}\n"
          ^ "{\"id\":2,\"op\":\"sleep\",\"duration_ms\":5,\"deadline_ms\":50}\n"))
  in
  let code_of id =
    List.find_map
      (fun l ->
        let j = Json.parse l in
        if Option.bind (field "id" j) Json.to_int_opt = Some id then Some (response_code l) else None)
      responses
  in
  Alcotest.(check (option string)) "long sleep finished" (Some "ok") (code_of 1);
  Alcotest.(check (option string)) "queued sleep timed out" (Some "deadline_exceeded") (code_of 2)

let test_daemon_drain_mid_batch () =
  (* Three sleeps are admitted (the ping response proves admission
     happened), then shutdown is requested while the first is still
     running: all three must still be answered and the daemon must return
     even though its input is never closed by the drain itself. *)
  let cfg = { (Daemon.default_config ()) with Daemon.batch_max = 1 } in
  let pong, responses =
    with_daemon ~cfg (fun h ->
        let frames =
          List.init 3 (fun i ->
              Printf.sprintf "{\"id\":%d,\"op\":\"sleep\",\"duration_ms\":60}" i)
        in
        Frame.write_all h.w_in (String.concat "\n" frames ^ "\n{\"id\":99,\"op\":\"ping\"}\n");
        let pong = h.next_line () in
        Daemon.request_shutdown ();
        pong)
  in
  (match pong with
  | Some l -> Alcotest.(check string) "pong first" "ok" (response_code l)
  | None -> Alcotest.fail "no pong");
  Alcotest.(check (list string)) "all admitted sleeps answered" [ "ok"; "ok"; "ok" ]
    (List.map response_code responses)

let test_daemon_rejects_while_draining () =
  (* Admission while the flag is up answers shutting_down.  The daemon
     still has to see the frame, so raise the flag while input is open. *)
  let (), responses =
    with_daemon (fun h ->
        send h "{\"id\":1,\"op\":\"ping\"}";
        let _pong = h.next_line () in
        Daemon.request_shutdown ();
        (* Draining daemons stop reading; this frame may legitimately go
           unanswered.  Only assert that the daemon exits cleanly. *)
        (try send h "{\"id\":2,\"op\":\"sleep\",\"duration_ms\":10}" with Unix.Unix_error _ -> ()))
  in
  List.iter
    (fun l ->
      Alcotest.(check bool) "clean codes only" true
        (List.mem (response_code l) [ "ok"; "shutting_down" ]))
    responses

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "frame chunking" `Quick test_frame_chunking;
    Alcotest.test_case "frame oversized recovery" `Quick test_frame_oversized;
    Alcotest.test_case "bounded queue backpressure" `Quick test_bqueue;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "stats histogram quantiles" `Quick test_stats_quantiles;
    Alcotest.test_case "protocol parsing" `Quick test_protocol_parse;
    Alcotest.test_case "engine ≡ one-shot output" `Quick test_engine_matches_oneshot;
    Alcotest.test_case "engine parallel cap ≡ sequential" `Quick test_engine_parallel_capped;
    Alcotest.test_case "engine error taxonomy" `Quick test_engine_errors;
    Alcotest.test_case "engine deadlines (incl. pathological sleep)" `Quick test_engine_deadline;
    Alcotest.test_case "engine panic isolation" `Quick test_engine_panic_isolation;
    Alcotest.test_case "daemon end to end" `Quick test_daemon_end_to_end;
    Alcotest.test_case "daemon oversized frame" `Quick test_daemon_oversized;
    Alcotest.test_case "daemon overload backpressure" `Quick test_daemon_overload;
    Alcotest.test_case "daemon queued deadline" `Quick test_daemon_queued_deadline;
    Alcotest.test_case "daemon drain mid-batch" `Quick test_daemon_drain_mid_batch;
    Alcotest.test_case "daemon shutting_down admission" `Quick test_daemon_rejects_while_draining;
  ]
