(* Unit and property tests for the bit-vector substrate. *)

module Bitvec = Lcm_support.Bitvec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create_empty () =
  let v = Bitvec.create 100 in
  check_int "length" 100 (Bitvec.length v);
  check "empty" true (Bitvec.is_empty v);
  check_int "count" 0 (Bitvec.count v);
  for i = 0 to 99 do
    check "bit clear" false (Bitvec.get v i)
  done

let test_create_full () =
  let v = Bitvec.create_full 70 in
  check_int "count" 70 (Bitvec.count v);
  for i = 0 to 69 do
    check "bit set" true (Bitvec.get v i)
  done

let test_set_get () =
  let v = Bitvec.create 130 in
  Bitvec.set v 0 true;
  Bitvec.set v 63 true;
  Bitvec.set v 64 true;
  Bitvec.set v 129 true;
  check "bit 0" true (Bitvec.get v 0);
  check "bit 63" true (Bitvec.get v 63);
  check "bit 64" true (Bitvec.get v 64);
  check "bit 129" true (Bitvec.get v 129);
  check "bit 1" false (Bitvec.get v 1);
  check_int "count" 4 (Bitvec.count v);
  Bitvec.set v 63 false;
  check "bit 63 cleared" false (Bitvec.get v 63);
  check_int "count after clear" 3 (Bitvec.count v)

let test_out_of_range () =
  let v = Bitvec.create 10 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec.get: index -1 out of [0,10)") (fun () ->
      ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 10" (Invalid_argument "Bitvec.get: index 10 out of [0,10)") (fun () ->
      ignore (Bitvec.get v 10))

let test_zero_length () =
  let v = Bitvec.create 0 in
  check "empty" true (Bitvec.is_empty v);
  check "equal to full" true (Bitvec.equal v (Bitvec.create_full 0))

let test_union_inter_diff () =
  let a = Bitvec.of_list 10 [ 1; 3; 5 ] in
  let b = Bitvec.of_list 10 [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 3; 4; 5 ] (Bitvec.to_list (Bitvec.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitvec.to_list (Bitvec.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 5 ] (Bitvec.to_list (Bitvec.diff a b))

let test_into_change_reporting () =
  let a = Bitvec.of_list 10 [ 1; 3 ] in
  check "no change" false (Bitvec.union_into ~into:a (Bitvec.of_list 10 [ 1 ]));
  check "change" true (Bitvec.union_into ~into:a (Bitvec.of_list 10 [ 2 ]));
  check "inter no change" false (Bitvec.inter_into ~into:a (Bitvec.of_list 10 [ 1; 2; 3 ]));
  check "inter change" true (Bitvec.inter_into ~into:a (Bitvec.of_list 10 [ 1 ]))

let test_complement () =
  let a = Bitvec.of_list 65 [ 0; 64 ] in
  let c = Bitvec.complement a in
  check_int "count" 63 (Bitvec.count c);
  check "bit 0" false (Bitvec.get c 0);
  check "bit 1" true (Bitvec.get c 1);
  check "bit 64" false (Bitvec.get c 64);
  (* Complement twice is identity. *)
  check "involution" true (Bitvec.equal a (Bitvec.complement c))

let test_subset () =
  let a = Bitvec.of_list 20 [ 2; 4 ] in
  let b = Bitvec.of_list 20 [ 2; 4; 6 ] in
  check "a ⊆ b" true (Bitvec.subset a b);
  check "b ⊄ a" false (Bitvec.subset b a);
  check "refl" true (Bitvec.subset a a)

let test_blit () =
  let a = Bitvec.of_list 10 [ 1 ] and b = Bitvec.of_list 10 [ 2 ] in
  check "changed" true (Bitvec.blit ~src:b ~dst:a);
  check "equal after" true (Bitvec.equal a b);
  check "no change" false (Bitvec.blit ~src:b ~dst:a)

let test_fold_iter () =
  let a = Bitvec.of_list 200 [ 0; 63; 64; 126; 199 ] in
  check_int "fold" 5 (Bitvec.fold_true (fun _ acc -> acc + 1) a 0);
  let seen = ref [] in
  Bitvec.iter_true (fun i -> seen := i :: !seen) a;
  Alcotest.(check (list int)) "iter ascending" [ 0; 63; 64; 126; 199 ] (List.rev !seen)

(* Property tests: the vectors model finite sets of ints. *)
let gen_set n = QCheck2.Gen.(list_size (0 -- 30) (0 -- (n - 1)))

let prop_roundtrip =
  QCheck2.Test.make ~name:"of_list/to_list is sort_uniq" ~count:200 (gen_set 97) (fun is ->
      Bitvec.to_list (Bitvec.of_list 97 is) = List.sort_uniq compare is)

let prop_union_commutes =
  QCheck2.Test.make ~name:"union commutes" ~count:200
    QCheck2.Gen.(pair (gen_set 97) (gen_set 97))
    (fun (xs, ys) ->
      let a = Bitvec.of_list 97 xs and b = Bitvec.of_list 97 ys in
      Bitvec.equal (Bitvec.union a b) (Bitvec.union b a))

let prop_de_morgan =
  QCheck2.Test.make ~name:"De Morgan: ¬(a ∪ b) = ¬a ∩ ¬b" ~count:200
    QCheck2.Gen.(pair (gen_set 130) (gen_set 130))
    (fun (xs, ys) ->
      let a = Bitvec.of_list 130 xs and b = Bitvec.of_list 130 ys in
      Bitvec.equal (Bitvec.complement (Bitvec.union a b)) (Bitvec.inter (Bitvec.complement a) (Bitvec.complement b)))

let prop_count =
  QCheck2.Test.make ~name:"count = |sort_uniq|" ~count:200 (gen_set 64) (fun is ->
      Bitvec.count (Bitvec.of_list 64 is) = List.length (List.sort_uniq compare is))

(* The word-skipping iter_true must visit exactly the indices a per-bit scan
   would, in the same ascending order — checked at widths straddling the
   word size (62/63/64/65 on a 63-bit int) and under qcheck. *)
let naive_true_indices v =
  let acc = ref [] in
  for i = Bitvec.length v - 1 downto 0 do
    if Bitvec.get v i then acc := i :: !acc
  done;
  !acc

let iter_true_indices v =
  let acc = ref [] in
  Bitvec.iter_true (fun i -> acc := i :: !acc) v;
  List.rev !acc

let test_iter_true_word_boundaries () =
  List.iter
    (fun len ->
      (* Edge patterns: empty, full, only boundary bits. *)
      let patterns =
        [
          Bitvec.create len;
          Bitvec.create_full len;
          Bitvec.of_list len (List.filter (fun i -> i < len) [ 0; 61; 62; 63; 64 ]);
          Bitvec.of_list len (if len > 0 then [ len - 1 ] else []);
        ]
      in
      List.iter
        (fun v ->
          Alcotest.(check (list int))
            (Printf.sprintf "iter_true len=%d" len)
            (naive_true_indices v) (iter_true_indices v))
        patterns)
    [ 0; 1; 62; 63; 64; 65; 126; 127; 128 ]

let prop_iter_true =
  QCheck2.Test.make ~name:"iter_true = per-bit scan" ~count:200 (gen_set 129) (fun is ->
      let v = Bitvec.of_list 129 is in
      iter_true_indices v = naive_true_indices v)

(* union_diff_into against the composed pure operations, at word-straddling
   widths. *)
let test_union_diff_into () =
  List.iter
    (fun len ->
      let every_k k = List.filter (fun i -> i mod k = 0) (List.init len Fun.id) in
      let into0 = Bitvec.of_list len (every_k 3) in
      let src = Bitvec.of_list len (every_k 2) in
      let diff = Bitvec.of_list len (every_k 5) in
      let got = Bitvec.copy into0 in
      let changed = Bitvec.union_diff_into ~into:got src ~diff in
      let expected = Bitvec.union into0 (Bitvec.diff src diff) in
      Alcotest.(check bool) (Printf.sprintf "union_diff_into len=%d" len) true
        (Bitvec.equal got expected);
      Alcotest.(check bool)
        (Printf.sprintf "change report len=%d" len)
        (not (Bitvec.equal got into0))
        changed;
      (* A second application is idempotent and reports no change. *)
      Alcotest.(check bool) (Printf.sprintf "idempotent len=%d" len) false
        (Bitvec.union_diff_into ~into:got src ~diff))
    [ 1; 62; 63; 64; 65; 126; 128 ]

let prop_union_diff_into =
  QCheck2.Test.make ~name:"union_diff_into = ∪ ∘ \\" ~count:200
    QCheck2.Gen.(triple (gen_set 130) (gen_set 130) (gen_set 130))
    (fun (xs, ys, zs) ->
      let into = Bitvec.of_list 130 xs and src = Bitvec.of_list 130 ys and diff = Bitvec.of_list 130 zs in
      let expected = Bitvec.union into (Bitvec.diff src diff) in
      ignore (Bitvec.union_diff_into ~into src ~diff);
      Bitvec.equal into expected)

(* --- word-aligned slice views (the parallel solver's partition unit) --- *)

let bpw = Bitvec.bits_per_word

(* Slices extracted at every word-aligned offset hold exactly the bits a
   per-bit read sees — at widths straddling one and two word boundaries
   (62–65, 127–129). *)
let test_slice_word_boundaries () =
  List.iter
    (fun len ->
      let v = Bitvec.of_list len (List.filter (fun i -> i mod 3 = 0 || i mod 7 = 0) (List.init len Fun.id)) in
      let lo = ref 0 in
      while !lo <= len do
        let s = Bitvec.slice v ~lo:!lo ~len:(len - !lo) in
        Alcotest.(check int) (Printf.sprintf "slice len (%d,%d)" len !lo) (len - !lo) (Bitvec.length s);
        for i = 0 to len - !lo - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "slice bit %d of (%d,%d)" i len !lo)
            (Bitvec.get v (!lo + i))
            (Bitvec.get s i)
        done;
        lo := !lo + bpw
      done)
    [ 62; 63; 64; 65; 127; 128; 129 ]

let test_slice_empty () =
  List.iter
    (fun len ->
      List.iter
        (fun lo ->
          if lo <= len then begin
            let s = Bitvec.slice (Bitvec.create_full len) ~lo ~len:0 in
            Alcotest.(check int) "empty slice length" 0 (Bitvec.length s);
            Alcotest.(check bool) "empty slice is empty" true (Bitvec.is_empty s);
            (* Blitting an empty slice back changes nothing. *)
            let v = Bitvec.create_full len in
            Alcotest.(check bool) "empty blit reports no change" false
              (Bitvec.blit_slice ~src:s ~into:v ~lo);
            Alcotest.(check int) "target intact" len (Bitvec.count v)
          end)
        [ 0; bpw; 2 * bpw ])
    [ 0; 62; 63; 64; 65; 127; 129 ]

let test_slice_misaligned_raises () =
  let v = Bitvec.create 130 in
  Alcotest.check_raises "misaligned slice"
    (Invalid_argument "Bitvec.slice: offset 1 is not word-aligned") (fun () ->
      ignore (Bitvec.slice v ~lo:1 ~len:10));
  Alcotest.check_raises "slice out of range"
    (Invalid_argument (Printf.sprintf "Bitvec.slice: [%d,%d) out of [0,130)" bpw (bpw + 130)))
    (fun () -> ignore (Bitvec.slice v ~lo:bpw ~len:130));
  (* A slice that ends mid-word and short of the destination's end cannot be
     blitted back whole-word. *)
  Alcotest.check_raises "interior partial blit"
    (Invalid_argument
       "Bitvec.blit_slice: slice must end on a word boundary or at the destination's end")
    (fun () -> ignore (Bitvec.blit_slice ~src:(Bitvec.create 3) ~into:v ~lo:0))

(* Round-trip: cutting a vector with [slice_bounds] and blitting every piece
   into a fresh vector reproduces it bit-for-bit, for any piece count. *)
let test_blit_slice_roundtrip () =
  List.iter
    (fun len ->
      List.iter
        (fun pieces ->
          let v = Bitvec.of_list len (List.filter (fun i -> i mod 2 = 0 || i mod 11 = 3) (List.init len Fun.id)) in
          let bounds = Bitvec.slice_bounds ~nbits:len ~pieces in
          (* Bounds are word-aligned, contiguous, and cover [0, len). *)
          let covered = ref 0 in
          Array.iter
            (fun (lo, slen) ->
              Alcotest.(check int) "contiguous" !covered lo;
              Alcotest.(check bool) "aligned" true (lo mod bpw = 0);
              Alcotest.(check bool) "nonempty unless degenerate" true
                (slen > 0 || Array.length bounds = 1);
              covered := lo + slen)
            bounds;
          Alcotest.(check int) (Printf.sprintf "covers len=%d pieces=%d" len pieces) len !covered;
          let rebuilt = Bitvec.create len in
          Array.iter
            (fun (lo, slen) ->
              ignore (Bitvec.blit_slice ~src:(Bitvec.slice v ~lo ~len:slen) ~into:rebuilt ~lo))
            bounds;
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip len=%d pieces=%d" len pieces)
            true (Bitvec.equal v rebuilt))
        [ 1; 2; 3; 4; 8; 100 ])
    [ 0; 1; 62; 63; 64; 65; 127; 128; 129; 300 ]

let prop_slice_roundtrip =
  QCheck2.Test.make ~name:"slice/blit_slice roundtrip (random sets, random pieces)" ~count:200
    QCheck2.Gen.(pair (gen_set 129) (1 -- 6))
    (fun (is, pieces) ->
      let v = Bitvec.of_list 129 is in
      let rebuilt = Bitvec.create 129 in
      Array.iter
        (fun (lo, slen) ->
          ignore (Bitvec.blit_slice ~src:(Bitvec.slice v ~lo ~len:slen) ~into:rebuilt ~lo))
        (Bitvec.slice_bounds ~nbits:129 ~pieces);
      Bitvec.equal v rebuilt)

let suite =
  [
    Alcotest.test_case "create empty" `Quick test_create_empty;
    Alcotest.test_case "create full" `Quick test_create_full;
    Alcotest.test_case "set/get across word boundaries" `Quick test_set_get;
    Alcotest.test_case "out of range raises" `Quick test_out_of_range;
    Alcotest.test_case "zero length" `Quick test_zero_length;
    Alcotest.test_case "union/inter/diff" `Quick test_union_inter_diff;
    Alcotest.test_case "in-place ops report changes" `Quick test_into_change_reporting;
    Alcotest.test_case "complement respects width" `Quick test_complement;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "blit" `Quick test_blit;
    Alcotest.test_case "fold/iter ascending" `Quick test_fold_iter;
    Alcotest.test_case "iter_true word-skipping vs bit loop" `Quick test_iter_true_word_boundaries;
    Alcotest.test_case "union_diff_into vs composed ops" `Quick test_union_diff_into;
    Alcotest.test_case "slice at word boundaries (62-65, 127-129)" `Quick test_slice_word_boundaries;
    Alcotest.test_case "empty slices" `Quick test_slice_empty;
    Alcotest.test_case "slice alignment errors" `Quick test_slice_misaligned_raises;
    Alcotest.test_case "slice_bounds/blit_slice roundtrip" `Quick test_blit_slice_roundtrip;
    QCheck_alcotest.to_alcotest prop_slice_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_iter_true;
    QCheck_alcotest.to_alcotest prop_union_diff_into;
    QCheck_alcotest.to_alcotest prop_union_commutes;
    QCheck_alcotest.to_alcotest prop_de_morgan;
    QCheck_alcotest.to_alcotest prop_count;
  ]
