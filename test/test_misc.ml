(* Smaller modules: tables, dot export, variable pools, metrics,
   generators, workload integrity, partial anticipatability. *)

module Table = Lcm_support.Table
module Bitvec = Lcm_support.Bitvec
module Prng = Lcm_support.Prng
module Cfg = Lcm_cfg.Cfg
module Dot = Lcm_cfg.Dot
module Lower = Lcm_cfg.Lower
module Edge_split = Lcm_cfg.Edge_split
module Var_pool = Lcm_dataflow.Var_pool
module Local = Lcm_dataflow.Local
module Antic = Lcm_dataflow.Antic
module Metrics = Lcm_eval.Metrics
module Gencfg = Lcm_eval.Gencfg
module Suites = Lcm_eval.Suites
module Registry = Lcm_eval.Registry
module Ast = Lcm_ir.Ast
module Parser = Lcm_ir.Parser

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_table_alignment () =
  let t = Table.create [ "col"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "much longer"; "2" ];
  Table.add_sep t;
  Table.add_row t [ "b" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: _ -> Alcotest.(check bool) "padded" true (contains header "col        ")
  | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "short row padded" true (List.length lines >= 5);
  Alcotest.(check bool) "rejects long rows" true
    (try
       Table.add_row t [ "a"; "b"; "c" ];
       false
     with Invalid_argument _ -> true)

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "bool" "yes" (Table.cell_bool true);
  Alcotest.(check string) "ratio" "0.50" (Table.cell_ratio 1 2);
  Alcotest.(check string) "ratio by zero" "n/a" (Table.cell_ratio 1 0)

let test_dot_output () =
  let g = Lower.parse_and_lower_func "function f(p) { if (p > 0) { x = 1; } return x; }" in
  let dot = Dot.to_dot g in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "has entry node" true (contains dot "n0");
  Alcotest.(check bool) "has edges" true (contains dot "->");
  let highlighted = Dot.to_dot ~highlight_edges:[ (Cfg.entry g, List.hd (Cfg.successors g (Cfg.entry g))) ] g in
  Alcotest.(check bool) "highlight color" true (contains highlighted "color=red")

let test_var_pool () =
  let p = Var_pool.of_list [ "a"; "b"; "a" ] in
  Alcotest.(check int) "dedup" 2 (Var_pool.size p);
  Alcotest.(check (option int)) "index a" (Some 0) (Var_pool.index p "a");
  Alcotest.(check string) "var 1" "b" (Var_pool.var p 1);
  Alcotest.(check int) "add existing" 0 (Var_pool.add p "a");
  Alcotest.(check int) "add new" 2 (Var_pool.add p "c")

let test_metrics_static () =
  let g = Lower.parse_and_lower_func "function f(a) { x = a + 1; y = x; print y; return y; }" in
  let s = Metrics.static_counts g in
  Alcotest.(check int) "candidates" 1 s.Metrics.candidate_occurrences;
  Alcotest.(check bool) "instrs counted" true (s.Metrics.instrs >= 4);
  Alcotest.(check bool) "moves counted" true (s.Metrics.copies_and_moves >= 2)

let test_metrics_dynamic () =
  let g = Lower.parse_and_lower_func "function f(a) { return a + 1; }" in
  let pool = Cfg.candidate_pool g in
  Alcotest.(check (option int)) "one eval per env" (Some 2)
    (Metrics.dynamic_evals ~pool ~envs:[ [ ("a", 1) ]; [ ("a", 2) ] ] g)

let test_gencfg_determinism () =
  let a = Gencfg.random_func (Prng.of_int 7) in
  let b = Gencfg.random_func (Prng.of_int 7) in
  Alcotest.(check string) "same program" (Ast.to_string [ a ]) (Ast.to_string [ b ]);
  let ga = Cfg.to_string (Gencfg.random_cfg (Prng.of_int 8)) in
  let gb = Cfg.to_string (Gencfg.random_cfg (Prng.of_int 8)) in
  Alcotest.(check string) "same graph" ga gb

let test_gencfg_parses_back () =
  (* Generated programs are valid MiniImp: print/parse round-trips. *)
  let rng = Prng.of_int 12 in
  for _ = 1 to 20 do
    let f = Gencfg.random_func rng in
    let printed = Ast.to_string [ f ] in
    match Parser.parse_program printed with
    | [ _ ] -> ()
    | _ -> Alcotest.fail "reparse changed arity"
    | exception exn -> Alcotest.failf "generated program does not reparse: %s\n%s" (Printexc.to_string exn) printed
  done

let test_suites_integrity () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      Alcotest.(check (list string)) (w.Suites.name ^ " valid") [] (Lcm_cfg.Validate.check g);
      Alcotest.(check bool)
        (w.Suites.name ^ " inputs bind")
        true
        (List.length (Suites.envs 1 w 3) = 3))
    Suites.all;
  Alcotest.(check bool) "names unique" true
    (let names = List.map (fun w -> w.Suites.name) Suites.all in
     List.length names = List.length (List.sort_uniq compare names))

let test_registry_integrity () =
  Alcotest.(check bool) "names unique" true
    (let names = Registry.names () in
     List.length names = List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "find works" true (Option.is_some (Registry.find "lcm-edge"));
  Alcotest.(check bool) "find fails for unknown" true (Option.is_none (Registry.find "nope"));
  Alcotest.(check bool) "paper algorithms flagged" true (List.length Registry.paper_algorithms >= 5)

let test_partial_anticipatability () =
  (* a+b computed on only one arm below the branch: partially but not
     fully anticipatable at the branch exit. *)
  let g =
    Lower.parse_and_lower_func
      "function f(a, b, p) { if (p > 0) { x = a + b; } else { x = 0; } return x; }"
  in
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let full = Antic.compute g local in
  let partial = Antic.compute_partial g local in
  let idx =
    Option.get
      (Lcm_ir.Expr_pool.index pool (Lcm_ir.Expr.Binary (Lcm_ir.Expr.Add, Lcm_ir.Expr.Var "a", Lcm_ir.Expr.Var "b")))
  in
  let branch_block =
    List.find
      (fun l -> match Cfg.term g l with Cfg.Branch _ -> true | Cfg.Goto _ | Cfg.Halt -> false)
      (Cfg.labels g)
  in
  Alcotest.(check bool) "not fully anticipatable" false (Bitvec.get (full.Antic.antout branch_block) idx);
  Alcotest.(check bool) "partially anticipatable" true (Bitvec.get (partial.Antic.antout branch_block) idx)

let test_depth_profile () =
  let w = Option.get (Suites.find "do_while_invariant") in
  let g = Suites.graph w in
  let pool = Cfg.candidate_pool g in
  let envs = [ [ ("a", 1); ("b", 2); ("n", 4) ] ] in
  let p = Lcm_eval.Depth_profile.collect ~envs ~pool g in
  Alcotest.(check int) "loop depth present" 1 (Lcm_eval.Depth_profile.max_depth p);
  (match p.Lcm_eval.Depth_profile.dynamic_by_depth with
  | Some arr ->
    Alcotest.(check bool) "work inside the loop" true (arr.(1) > 0)
  | None -> Alcotest.fail "did not terminate");
  (* After LCM the loop's invariant evaluations move to depth 0. *)
  let lcm = (Option.get (Registry.find "lcm-edge")).Registry.run g in
  let p' = Lcm_eval.Depth_profile.collect ~envs ~pool lcm in
  match (p.Lcm_eval.Depth_profile.dynamic_by_depth, p'.Lcm_eval.Depth_profile.dynamic_by_depth) with
  | Some before, Some after ->
    Alcotest.(check bool) "depth-1 work decreased" true (after.(1) < before.(1));
    Alcotest.(check bool) "depth-0 work increased" true (after.(0) > before.(0))
  | _, _ -> Alcotest.fail "did not terminate"

let test_edge_split_counts () =
  let g = Lcm_figures.Critical_edge.graph () in
  let blocks_before = Cfg.num_blocks g in
  Alcotest.(check bool) "has critical edge" true (Edge_split.has_critical_edges g);
  let split = Edge_split.split_critical_edges g in
  Alcotest.(check bool) "no critical edges after" false (Edge_split.has_critical_edges split);
  Alcotest.(check int) "one block added" (blocks_before + 1) (Cfg.num_blocks split);
  let joins = Edge_split.split_join_edges g in
  Alcotest.(check bool) "join split adds more" true (Cfg.num_blocks joins > blocks_before)

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "var pool" `Quick test_var_pool;
    Alcotest.test_case "metrics: static" `Quick test_metrics_static;
    Alcotest.test_case "metrics: dynamic" `Quick test_metrics_dynamic;
    Alcotest.test_case "generators deterministic" `Quick test_gencfg_determinism;
    Alcotest.test_case "generated programs reparse" `Quick test_gencfg_parses_back;
    Alcotest.test_case "workload integrity" `Quick test_suites_integrity;
    Alcotest.test_case "registry integrity" `Quick test_registry_integrity;
    Alcotest.test_case "partial anticipatability" `Quick test_partial_anticipatability;
    Alcotest.test_case "depth profile" `Quick test_depth_profile;
    Alcotest.test_case "edge splitting" `Quick test_edge_split_counts;
  ]
