(* Process-level tests of crash-durable handles: a real `lcmopt serve
   --shards N --state-dir DIR` fleet, with a worker SIGKILLed while a
   stream of deltas against its retained handles is in flight.

   What must hold:
   - zero [unknown_handle]: every delta in the stream is answered ok —
     frames caught mid-crash are parked and replayed onto the respawned
     worker after it rebuilds its handles from the journal;
   - the rebuilt state is exact: post-recovery probe deltas produce
     programs bit-identical to a reference fleet that saw the same
     history without any crash;
   - the first post-recovery response per handle carries
     [recovered:true];
   - a request whose processing kills two workers is quarantined with
     the typed [poisoned_request] error instead of being fed to a third;
   - a graceful restart of the whole fleet (same --state-dir) also
     brings every handle back. *)

module Json = Lcm_server.Json
module Frame = Lcm_server.Frame

let resolve_exe () =
  match Sys.getenv_opt "LCMOPT_EXE" with
  | Some p -> p
  | None ->
    let d = Filename.dirname Sys.executable_name in
    Filename.concat (Filename.dirname (Filename.dirname d)) "bin/lcmopt.exe"

type conn = {
  pid : int;
  req_w : Unix.file_descr;
  resp_r : Unix.file_descr;
  reader : Frame.reader;
  chunk : Bytes.t;
  mutable inbox : Json.t list;
}

let spawn ?env args =
  let exe = resolve_exe () in
  if not (Sys.file_exists exe) then Alcotest.failf "daemon binary not found at %s" exe;
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let argv = Array.of_list ((exe :: [ "serve"; "--stdio"; "--quiet" ]) @ args) in
  let pid =
    match env with
    | None -> Unix.create_process exe argv req_r resp_w Unix.stderr
    | Some extra ->
      Unix.create_process_env exe argv
        (Array.append (Unix.environment ()) extra)
        req_r resp_w Unix.stderr
  in
  Unix.close req_r;
  Unix.close resp_w;
  {
    pid;
    req_w;
    resp_r;
    reader = Frame.create ~max_frame:(1 lsl 22);
    chunk = Bytes.create 65536;
    inbox = [];
  }

let stop conn =
  (try Unix.close conn.req_w with Unix.Unix_error _ -> ());
  (try Unix.close conn.resp_r with Unix.Unix_error _ -> ());
  let rec wait () =
    match Unix.waitpid [] conn.pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

let send conn line =
  let line = line ^ "\n" in
  let n = String.length line in
  let k = ref 0 in
  while !k < n do
    k := !k + Unix.write_substring conn.req_w line !k (n - !k)
  done

let recv_until ?(timeout_s = 30.) conn pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let take () =
    let rec split acc = function
      | [] -> None
      | j :: rest when pred j ->
        conn.inbox <- List.rev_append acc rest;
        Some j
      | j :: rest -> split (j :: acc) rest
    in
    split [] conn.inbox
  in
  let rec go () =
    match take () with
    | Some j -> Some j
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then None
      else (
        match Unix.select [ conn.resp_r ] [] [] left with
        | [], _, _ -> None
        | _ -> (
          match Unix.read conn.resp_r conn.chunk 0 (Bytes.length conn.chunk) with
          | 0 -> None
          | n ->
            conn.inbox <-
              conn.inbox
              @ List.filter_map
                  (function Frame.Frame f -> Some (Json.parse f) | Frame.Oversized _ -> None)
                  (Frame.feed conn.reader conn.chunk n);
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let sfield j n = Option.bind (Json.member n j) Json.to_string_opt
let ifield j n = Option.bind (Json.member n j) Json.to_int_opt
let bfield j n = Option.bind (Json.member n j) Json.to_bool_opt
let has_id id j = ifield j "id" = Some id

let roundtrip ?timeout_s conn id frame =
  send conn frame;
  match recv_until ?timeout_s conn (has_id id) with
  | Some j -> j
  | None -> Alcotest.failf "no response to request %d" id

let run_frame ?(retain = false) ~id text =
  Printf.sprintf "{\"id\":%d,\"op\":\"run\",\"format\":\"cfg\"%s,\"program\":%s}" id
    (if retain then ",\"retain\":true" else "")
    (Json.to_string (Json.String text))

let delta_frame ?(validate = false) ~id ~handle instrs =
  Printf.sprintf "{\"id\":%d,\"op\":\"delta\",\"handle\":%S%s,\"edits\":[{\"block\":\"B2\",\"instrs\":[%s]}]}"
    id handle
    (if validate then ",\"validate\":true" else "")
    (String.concat "," (List.map (fun i -> Json.to_string (Json.String i)) instrs))

let fetch_stats conn id =
  let j = roundtrip conn id (Printf.sprintf "{\"id\":%d,\"op\":\"stats\"}" id) in
  Option.value (Json.member "stats" j) ~default:Json.Null

let counter stats name =
  match Option.bind (Json.member "counters" stats) (Json.member name) with
  | Some v -> Option.value (Json.to_int_opt v) ~default:0
  | None -> 0

let pid_of_worker stats w =
  match Option.bind (Json.member "shard" stats) (Json.member "fleet") with
  | Some (Json.List rows) -> (
    match List.find_opt (fun r -> ifield r "worker" = Some w) rows with
    | Some r -> (
      match ifield r "pid" with
      | Some p -> p
      | None -> Alcotest.failf "worker %d has no pid" w)
    | None -> Alcotest.failf "worker %d not in the stats fleet" w)
  | _ -> Alcotest.fail "no fleet in stats"

let fresh_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let tiny =
  "cfg t (entry B0, exit B1)\nB0:\n  goto B2\nB1:\n  halt\nB2:\n  x := a + b\n  print x\n  if p \
   then B2 else B1\n"

(* A delta history for handle [k], step [i]: Set_instrs only, so
   at-least-once replay after a crash is idempotent and the final state
   is a pure function of the (ordered) history. *)
let step_instrs k i =
  [
    Printf.sprintf "x := a + b";
    Printf.sprintf "h%d_%d := a + b" k i;
    "print x";
  ]

let expect_ok what j =
  (match sfield j "status" with
  | Some "ok" -> ()
  | s ->
    Alcotest.failf "%s: status %s, code %s: %s" what
      (Option.value ~default:"?" s)
      (Option.value ~default:"?" (sfield j "code"))
      (Option.value ~default:"" (sfield j "message")));
  j

(* Retain [n] copies of the same program: identical content routes to one
   worker, so that worker ends up holding all [n] handles. *)
let retain_fleet conn ~n =
  List.init n (fun k ->
      let j = expect_ok "retain" (roundtrip conn (k + 1) (run_frame ~retain:true ~id:(k + 1) tiny)) in
      match (sfield j "handle", ifield j "worker") with
      | Some h, Some w -> (h, w)
      | _ -> Alcotest.fail "retain response missing handle/worker")

(* ---- kill -9 mid-delta-stream ---- *)

let test_kill9_mid_stream () =
  let state_dir = fresh_dir "lcm-rec-state" in
  let ref_dir = fresh_dir "lcm-rec-ref" in
  Fun.protect ~finally:(fun () -> rm_rf state_dir; rm_rf ref_dir) @@ fun () ->
  let conn = spawn [ "--shards"; "2"; "--cache"; "0"; "--workers"; "1"; "--state-dir"; state_dir ] in
  let reference = spawn [ "--shards"; "2"; "--cache"; "0"; "--workers"; "1"; "--state-dir"; ref_dir ] in
  Fun.protect ~finally:(fun () -> stop conn; stop reference) @@ fun () ->
  let n = 8 in
  let handles = retain_fleet conn ~n in
  let ref_handles = retain_fleet reference ~n in
  Alcotest.(check bool) "deterministic handle minting" true (handles = ref_handles);
  let victim_worker = snd (List.hd handles) in
  List.iter
    (fun (_, w) -> Alcotest.(check int) "all handles on one worker" victim_worker w)
    handles;
  (* Warm-up delta on each handle, so recovery has patch records to
     replay, not just bases. *)
  List.iteri
    (fun k (h, _) ->
      ignore (expect_ok "warm-up" (roundtrip conn (100 + k) (delta_frame ~id:(100 + k) ~handle:h (step_instrs k 0))));
      ignore
        (expect_ok "ref warm-up"
           (roundtrip reference (100 + k) (delta_frame ~id:(100 + k) ~handle:h (step_instrs k 0)))))
    handles;
  let victim_pid = pid_of_worker (fetch_stats conn 90) victim_worker in
  (* The stream: 3 deltas per handle, all written before we read any
     response, then SIGKILL the worker holding every handle. *)
  let ids = ref [] in
  List.iteri
    (fun k (h, _) ->
      for i = 1 to 3 do
        let id = 1000 + (k * 10) + i in
        ids := id :: !ids;
        send conn (delta_frame ~id ~handle:h (step_instrs k i))
      done)
    handles;
  Unix.kill victim_pid Sys.sigkill;
  (* Every delta must be answered ok — zero unknown_handle. *)
  List.iter
    (fun id ->
      match recv_until conn (has_id id) with
      | None -> Alcotest.failf "delta %d lost in the crash" id
      | Some j -> ignore (expect_ok (Printf.sprintf "delta %d after kill -9" id) j))
    (List.rev !ids);
  (* The reference fleet sees the same stream, crash-free and in the
     same per-handle order. *)
  List.iteri
    (fun k (h, _) ->
      for i = 1 to 3 do
        let id = 1000 + (k * 10) + i in
        ignore (expect_ok "ref delta" (roundtrip reference id (delta_frame ~id ~handle:h (step_instrs k i))))
      done)
    handles;
  (* Probe: every handle's post-recovery state is bit-identical to the
     never-crashed fleet's. *)
  List.iteri
    (fun k (h, _) ->
      let id = 2000 + k in
      let a = expect_ok "probe" (roundtrip conn id (delta_frame ~id ~handle:h (step_instrs k 99))) in
      let b =
        expect_ok "ref probe" (roundtrip reference id (delta_frame ~id ~handle:h (step_instrs k 99)))
      in
      Alcotest.(check (option string))
        (Printf.sprintf "handle %s bit-identical after recovery" h)
        (sfield b "program") (sfield a "program"))
    handles;
  (* A validating delta still passes on the rebuilt state. *)
  let h0 = fst (List.hd handles) in
  let v = expect_ok "validate" (roundtrip conn 3000 (delta_frame ~validate:true ~id:3000 ~handle:h0 (step_instrs 0 100))) in
  Alcotest.(check (option bool)) "validated" (Some true) (bfield v "validated");
  (* The books: handles were recovered from the journal, frames were
     parked and replayed, nothing was quarantined. *)
  let stats = fetch_stats conn 4000 in
  Alcotest.(check bool)
    (Printf.sprintf "journal.recovered_handles_total >= %d" n)
    true
    (counter stats "journal.recovered_handles_total" >= n);
  Alcotest.(check bool) "replays counted" true (counter stats "shard.replays_total" >= 1);
  Alcotest.(check int) "no unknown_handle" 0 (counter stats "errors.unknown_handle");
  Alcotest.(check int) "no poisoned requests" 0 (counter stats "shard.poisoned_total")

(* ---- the first post-recovery response announces the rebuild ---- *)

let test_recovered_flag () =
  let state_dir = fresh_dir "lcm-rec-flag" in
  Fun.protect ~finally:(fun () -> rm_rf state_dir) @@ fun () ->
  let conn = spawn [ "--shards"; "2"; "--cache"; "0"; "--workers"; "1"; "--state-dir"; state_dir ] in
  Fun.protect ~finally:(fun () -> stop conn) @@ fun () ->
  let j = expect_ok "retain" (roundtrip conn 1 (run_frame ~retain:true ~id:1 tiny)) in
  let h = Option.get (sfield j "handle") in
  let w = Option.get (ifield j "worker") in
  let d1 = expect_ok "live delta" (roundtrip conn 2 (delta_frame ~id:2 ~handle:h (step_instrs 0 1))) in
  Alcotest.(check (option bool)) "no recovered flag while live" None (bfield d1 "recovered");
  Unix.kill (pid_of_worker (fetch_stats conn 3) w) Sys.sigkill;
  (* The next delta is parked through the respawn and answered from the
     rebuilt handle. *)
  let d2 = expect_ok "post-crash delta" (roundtrip conn 4 (delta_frame ~id:4 ~handle:h (step_instrs 0 2))) in
  Alcotest.(check (option bool)) "first response flags the rebuild" (Some true) (bfield d2 "recovered");
  let d3 = expect_ok "next delta" (roundtrip conn 5 (delta_frame ~id:5 ~handle:h (step_instrs 0 3))) in
  Alcotest.(check (option bool)) "flag clears after one response" None (bfield d3 "recovered")

(* ---- poison quarantine ---- *)

let test_poisoned_request () =
  (* Every frame a worker processes crashes it (daemon.crash at 100%):
     the run kills its first worker, the replay kills the ring successor,
     and the third worker must never see the frame — the client gets the
     typed poisoned_request error instead. *)
  let conn =
    spawn
      ~env:[| "LCM_CHAOS=7:daemon.crash=1" |]
      [ "--shards"; "3"; "--cache"; "0"; "--workers"; "1" ]
  in
  Fun.protect ~finally:(fun () -> stop conn) @@ fun () ->
  let j = roundtrip conn 1 (run_frame ~id:1 tiny) in
  Alcotest.(check (option string)) "status" (Some "error") (sfield j "status");
  Alcotest.(check (option string)) "typed error" (Some "poisoned_request") (sfield j "code");
  (* Exactly one replay hop — death one replayed it onto the successor,
     death two quarantined it; no third worker ever saw the frame.
     (Stats is aggregated by the router, so it answers even while the
     workers crash-loop.) *)
  let stats = fetch_stats conn 2 in
  Alcotest.(check int) "poisoned counted" 1 (counter stats "shard.poisoned_total");
  Alcotest.(check int) "exactly one replay hop" 1 (counter stats "shard.replays_total")

(* ---- graceful restart durability ---- *)

let test_graceful_restart () =
  let state_dir = fresh_dir "lcm-rec-grace" in
  Fun.protect ~finally:(fun () -> rm_rf state_dir) @@ fun () ->
  let handles =
    let conn =
      spawn [ "--shards"; "2"; "--cache"; "0"; "--workers"; "1"; "--state-dir"; state_dir ]
    in
    Fun.protect ~finally:(fun () -> stop conn) @@ fun () ->
    let hs = retain_fleet conn ~n:3 in
    List.iteri
      (fun k (h, _) ->
        ignore (expect_ok "delta" (roundtrip conn (50 + k) (delta_frame ~id:(50 + k) ~handle:h (step_instrs k 0)))))
      hs;
    hs
  in
  (* A whole new fleet over the same state dir: every handle is back. *)
  let conn = spawn [ "--shards"; "2"; "--cache"; "0"; "--workers"; "1"; "--state-dir"; state_dir ] in
  Fun.protect ~finally:(fun () -> stop conn) @@ fun () ->
  List.iteri
    (fun k (h, _) ->
      let j =
        expect_ok "post-restart delta"
          (roundtrip conn (80 + k) (delta_frame ~id:(80 + k) ~handle:h (step_instrs k 1)))
      in
      Alcotest.(check (option bool))
        (Printf.sprintf "handle %s recovered" h)
        (Some true) (bfield j "recovered"))
    handles

let () =
  Alcotest.run "lcm-recovery"
    [
      ( "recovery",
        [
          Alcotest.test_case "kill -9 mid-delta-stream: zero unknown_handle, exact state" `Quick
            test_kill9_mid_stream;
          Alcotest.test_case "recovered:true on the first post-recovery response" `Quick
            test_recovered_flag;
          Alcotest.test_case "two coincident deaths poison the request" `Quick
            test_poisoned_request;
          Alcotest.test_case "graceful restart rebuilds every handle" `Quick test_graceful_restart;
        ] );
    ]
