(* Arena / scratch-pool properties: whatever a previous loan wrote — or
   failed to finish writing because a chaos panic tore the request down at
   a phase boundary — a freshly checked-out buffer is fully cleared or
   re-initialized.  The stale-bit guarantee is the whole safety story of
   buffer recycling, so it gets property tests of its own, including under
   fault injection and concurrently across domains (CI runs this suite at
   LCM_DOMAINS=1 and 4). *)

module Bitvec = Lcm_support.Bitvec
module Arena = Lcm_support.Arena
module Pool = Lcm_support.Pool
module Fault = Lcm_support.Fault
module Suites = Lcm_eval.Suites
module Lcm_edge = Lcm_core.Lcm_edge

let qtest = QCheck_alcotest.to_alcotest

(* Dirty every buffer kind the arena hands out, so the *next* checkout has
   real garbage to survive: bits in vectors, values in int/bool arrays,
   non-dummy vectors in slot arrays. *)
let scribble a n bits =
  let v = Arena.bitvec a n in
  List.iter (fun i -> Bitvec.set v (i mod n) true) bits;
  Bitvec.fill (Arena.bitvec_full a n) true;
  let ia = Arena.int_array a n in
  for i = 0 to n - 1 do
    ia.(i) <- i + 1
  done;
  let ba = Arena.bool_array a n in
  Array.fill ba 0 n true;
  let va = Arena.vec_array a n in
  for i = 0 to n - 1 do
    va.(i) <- v
  done

(* A checkout after [reset] sees clean state in every buffer kind, for any
   size in any bucket relation (smaller, equal, larger) to the dirty loan. *)
let prop_clean_after_dirty_reset =
  QCheck2.Test.make ~name:"checkout after dirty reset is clean" ~count:300
    QCheck2.Gen.(triple (1 -- 200) (1 -- 200) (list_size (1 -- 40) (0 -- 10_000)))
    (fun (n1, n2, bits) ->
      let a = Arena.create () in
      scribble a n1 bits;
      Arena.reset a;
      let v = Arena.bitvec a n2 in
      let full = Arena.bitvec_full a n2 in
      let ia = Arena.int_array a n2 in
      let ba = Arena.bool_array a n2 in
      let va = Arena.vec_array a n2 in
      Bitvec.length v = n2
      && Bitvec.is_empty v && Bitvec.count v = 0
      && Bitvec.count full = n2
      && Array.for_all (fun x -> x = 0) (Array.init n2 (fun i -> ia.(i)))
      && (not (Array.exists Fun.id (Array.sub ba 0 n2)))
      && Array.for_all (fun i -> Bitvec.length va.(i) = 0) (Array.init n2 Fun.id))

(* Set-algebra results on recycled vectors match fresh heap vectors: the
   capacity tail beyond [len] must never influence count/equal/complement. *)
let prop_recycled_equals_fresh =
  QCheck2.Test.make ~name:"ops on recycled vectors ≡ fresh vectors" ~count:300
    QCheck2.Gen.(
      triple (1 -- 150) (list_size (0 -- 30) (0 -- 10_000)) (list_size (0 -- 30) (0 -- 10_000)))
    (fun (n, xs, ys) ->
      let a = Arena.create () in
      scribble a (n + 64) xs;
      Arena.reset a;
      let norm l = List.sort_uniq compare (List.map (fun i -> i mod n) l) in
      let mk l =
        let v = Arena.bitvec a n in
        List.iter (fun i -> Bitvec.set v i true) (norm l);
        v
      in
      let x = mk xs and y = mk ys in
      let hx = Bitvec.of_list n (norm xs) and hy = Bitvec.of_list n (norm ys) in
      Bitvec.equal x hx && Bitvec.equal y hy
      && Bitvec.to_list (Bitvec.union x y) = Bitvec.to_list (Bitvec.union hx hy)
      && Bitvec.to_list (Bitvec.complement x) = Bitvec.to_list (Bitvec.complement hx)
      && Bitvec.count (Bitvec.inter x y) = Bitvec.count (Bitvec.inter hx hy))

(* Steady state: once a shape's buffers exist, re-running the same loan
   pattern hits the freelists only — misses stop growing.  This is the
   zero-allocation property the engine's metrics report. *)
let prop_steady_state_no_misses =
  QCheck2.Test.make ~name:"warm arena re-loans without misses" ~count:100
    QCheck2.Gen.(pair (1 -- 128) (1 -- 10))
    (fun (n, rounds) ->
      let a = Arena.create () in
      let loan () =
        ignore (Arena.bitvec a n);
        ignore (Arena.bitvec_full a n);
        ignore (Arena.int_array a n);
        ignore (Arena.bool_array a n);
        ignore (Arena.vec_array a n)
      in
      loan ();
      Arena.reset a;
      let misses_warm = Arena.misses a in
      for _ = 1 to rounds do
        loan ();
        Arena.reset a
      done;
      Arena.checkouts a > 0 && Arena.misses a = misses_warm)

(* A panic mid-request must not leak loans or stale state: with_arena's
   finalizer resets and reparks the arena, so the next request on this
   domain sees clean buffers and a warm freelist. *)
let prop_clean_after_panic =
  QCheck2.Test.make ~name:"with_arena: clean + warm after panics" ~count:100
    QCheck2.Gen.(pair (1 -- 120) (list_size (1 -- 30) (0 -- 10_000)))
    (fun (n, bits) ->
      let blocks = n and exprs = n in
      (* Warm the shape class, then panic a few requests mid-scribble. *)
      Pool.Scratch.with_arena ~blocks ~exprs (fun a -> scribble a n bits);
      for _ = 1 to 3 do
        match
          Pool.Scratch.with_arena ~blocks ~exprs (fun a ->
              scribble a n bits;
              raise Exit)
        with
        | () -> ()
        | exception Exit -> ()
      done;
      Pool.Scratch.with_arena ~blocks ~exprs (fun a ->
          let misses0 = Arena.misses a in
          let v = Arena.bitvec a n in
          let ia = Arena.int_array a n in
          let ba = Arena.bool_array a n in
          Bitvec.is_empty v
          && Array.for_all (fun i -> ia.(i) = 0) (Array.init n Fun.id)
          && (not (Array.exists Fun.id (Array.sub ba 0 n)))
          && Arena.misses a = misses0))

(* ---- chaos: panics at phase boundaries of the real cascade ---- *)

let with_chaos ~seed spec f =
  Fault.configure ~seed spec;
  Fun.protect ~finally:Fault.disable f

let sorted_sets l =
  List.sort compare (List.map (fun (k, v) -> (k, Bitvec.to_list v)) l)

let edge_sets l = List.sort compare (List.map (fun (k, v) -> (k, Bitvec.to_list v)) l)

let analysis_fingerprint (a : Lcm_edge.analysis) =
  (edge_sets a.Lcm_edge.insert, sorted_sets a.Lcm_edge.delete, sorted_sets a.Lcm_edge.copy)

(* Interleave chaos-killed analyses (the "engine.alloc" boundary fires
   inside the cascade, tearing the request down mid-phase with loans
   outstanding) with clean analyses, and require every surviving run to be
   bit-identical to the heap-path decision on the same graph. *)
let test_cascade_identical_under_chaos () =
  let graphs =
    List.filter_map Suites.find [ "diamond"; "loop-invariant"; "butterfly"; "grid" ]
    |> List.map Suites.graph
  in
  let graphs = if graphs = [] then List.map Suites.graph Suites.all else graphs in
  List.iter
    (fun g ->
      let expected = analysis_fingerprint (Lcm_edge.analyze g) in
      let blocks = Lcm_cfg.Cfg.label_bound g in
      let exprs = Lcm_ir.Expr_pool.size (Lcm_cfg.Cfg.candidate_pool g) in
      let survived = ref 0 in
      with_chaos ~seed:11 [ ("engine.alloc", 0.4) ] (fun () ->
          for _ = 1 to 12 do
            match
              Pool.Scratch.with_arena ~blocks ~exprs (fun arena ->
                  (* The engine's chaos boundary, at a phase seam. *)
                  if Fault.fire "engine.alloc" then raise Out_of_memory;
                  let a = Lcm_edge.analyze ~scratch:arena g in
                  if Fault.fire "engine.alloc" then raise Out_of_memory;
                  analysis_fingerprint a)
            with
            | got ->
              incr survived;
              Alcotest.(check bool) "scratch decision ≡ heap decision" true (got = expected)
            | exception Out_of_memory -> ()
          done);
      (* The chaos rate leaves both populated outcomes overwhelmingly
         likely in 12 draws; a seed change that kills every run would make
         the test vacuous, so fail loudly instead. *)
      Alcotest.(check bool) "some runs survived chaos" true (!survived > 0))
    graphs

(* Cross-domain: each domain hammers its own scratch pool concurrently;
   arenas are domain-local, so cleanliness must hold on every domain with
   no cross-talk.  Runs on 4 domains regardless of LCM_DOMAINS so the
   multi-domain path is always exercised. *)
let test_clean_across_domains () =
  let failures = Atomic.make 0 in
  let body () =
    for round = 1 to 50 do
      let n = 1 + ((round * 37) mod 150) in
      let ok =
        Pool.Scratch.with_arena ~blocks:n ~exprs:n (fun a ->
            let v = Arena.bitvec a n in
            let clean = Bitvec.is_empty v && Bitvec.count v = 0 in
            Bitvec.fill v true;
            let ia = Arena.int_array a n in
            let ints = Array.for_all (fun i -> ia.(i) = 0) (Array.init n Fun.id) in
            Array.fill ia 0 n max_int;
            clean && ints)
      in
      if not ok then Atomic.incr failures
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn body) in
  body ();
  List.iter Domain.join domains;
  Alcotest.(check int) "no stale state on any domain" 0 (Atomic.get failures)

let suite =
  [
    qtest prop_clean_after_dirty_reset;
    qtest prop_recycled_equals_fresh;
    qtest prop_steady_state_no_misses;
    qtest prop_clean_after_panic;
    Alcotest.test_case "cascade ≡ heap under phase-boundary chaos" `Quick
      test_cascade_identical_under_chaos;
    Alcotest.test_case "scratch cleanliness across 4 domains" `Quick test_clean_across_domains;
  ]
