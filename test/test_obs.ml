(* Observability layer: Trace spans and context, Prof aggregation, the
   exporters, the Pass/Pipeline API the optimizers were ported onto, the
   Stats snapshot schema, and typed metric handles.

   Tracing state is process-global; every test that enables collection
   disables it (and drains) before returning so suites stay independent. *)

module Pool = Lcm_support.Pool
module Cfg = Lcm_cfg.Cfg
module Pass = Lcm_core.Pass
module Trace = Lcm_obs.Trace
module Prof = Lcm_obs.Prof
module Registry = Lcm_eval.Registry
module Corpus = Lcm_eval.Corpus
module Suites = Lcm_eval.Suites
module Stats = Lcm_server.Stats
module Json = Lcm_server.Json

let with_tracing f =
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      ignore (Trace.drain ());
      Trace.disable ())
    f

let diamond () = Suites.graph (Option.get (Suites.find "diamond"))

let corpus_graph ~blocks ~seed =
  (List.hd (Corpus.generate ~seed [ (blocks, 1) ])).Corpus.graph

(* ---- Trace: spans, context, well-formedness ---- *)

let test_disabled_is_passthrough () =
  Trace.disable ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Alcotest.(check int) "span is f()" 41 (Trace.span "x" (fun () -> 41));
  Alcotest.(check int) "in_trace is f()" 42 (Trace.in_trace ~trace_id:"t" "x" (fun () -> 42));
  Alcotest.(check (list reject)) "nothing recorded" [] (List.map ignore (Trace.drain ()))

let test_span_nesting () =
  with_tracing (fun () ->
      Trace.in_trace ~trace_id:"nest" "root" (fun () ->
          Trace.span "a" (fun () -> Trace.span "b" (fun () -> ())));
      let spans = Trace.drain () in
      let find n = List.find (fun (s : Trace.span) -> s.Trace.name = n) spans in
      let root = find "root" and a = find "a" and b = find "b" in
      Alcotest.(check int) "three spans" 3 (List.length spans);
      Alcotest.(check int) "root is a root" (-1) root.Trace.parent;
      Alcotest.(check int) "a under root" root.Trace.id a.Trace.parent;
      Alcotest.(check int) "b under a" a.Trace.id b.Trace.parent;
      List.iter
        (fun (s : Trace.span) ->
          Alcotest.(check string) "trace id inherited" "nest" s.Trace.trace_id;
          Alcotest.(check bool) "non-negative duration" true (Trace.dur s >= 0.))
        spans)

let test_span_error_attr () =
  with_tracing (fun () ->
      (try Trace.in_trace ~trace_id:"e" "boom" (fun () -> failwith "die")
       with Failure _ -> ());
      match Trace.drain () with
      | [ s ] -> Alcotest.(check bool) "error attr" true (List.mem_assoc "error" s.Trace.attrs)
      | l -> Alcotest.failf "expected one span, got %d" (List.length l))

let test_take_is_per_trace () =
  with_tracing (fun () ->
      Trace.in_trace ~trace_id:"one" "a" (fun () -> ());
      Trace.in_trace ~trace_id:"two" "b" (fun () -> ());
      let one = Trace.take ~trace_id:"one" in
      Alcotest.(check int) "one span taken" 1 (List.length one);
      Alcotest.(check string) "the right trace" "one" (List.hd one).Trace.trace_id;
      let rest = Trace.drain () in
      Alcotest.(check int) "other trace still buffered" 1 (List.length rest);
      Alcotest.(check string) "which is two" "two" (List.hd rest).Trace.trace_id)

let test_mint_ids_unique () =
  let a = Trace.mint_id () and b = Trace.mint_id () in
  Alcotest.(check bool) "prefix" true (String.length a > 2 && String.sub a 0 2 = "t-");
  Alcotest.(check bool) "distinct" true (a <> b)

(* The tentpole claim: one request through the parallel engine yields one
   connected span forest — pool workers record under the submitter's
   context, every cascade phase appears, nothing dangles.  The pool is 4
   domains regardless of LCM_DOMAINS so the cross-domain path always runs. *)
let test_span_tree_parallel () =
  let g = corpus_graph ~blocks:300 ~seed:11 in
  let pool = Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      with_tracing (fun () ->
          let entry = Option.get (Registry.find "lcm-edge") in
          ignore
            (Trace.in_trace ~trace_id:"par" "request" (fun () ->
                 Pass.Pipeline.run { Pass.default_ctx with Pass.workers = Some pool } entry.Registry.pipeline g));
          let spans = Trace.drain () in
          let ids = List.map (fun (s : Trace.span) -> s.Trace.id) spans in
          List.iter
            (fun (s : Trace.span) ->
              Alcotest.(check string) "single trace id" "par" s.Trace.trace_id;
              if s.Trace.parent <> -1 then
                Alcotest.(check bool)
                  (Printf.sprintf "parent of %s resolves" s.Trace.name)
                  true (List.mem s.Trace.parent ids))
            spans;
          let names = List.map (fun (s : Trace.span) -> s.Trace.name) spans in
          List.iter
            (fun n ->
              Alcotest.(check bool) (n ^ " present") true (List.mem n names))
            [
              "request"; "pipeline.lcm-edge"; "pass.lcm-edge"; "lcm.local"; "lcm.up_safety";
              "lcm.down_safety"; "lcm.earliest"; "lcm.delay"; "lcm.latest"; "pool.task";
            ];
          (* The pool.task spans are the cross-domain hops; each must hang
             off a span of this trace, not float as its own root. *)
          List.iter
            (fun (s : Trace.span) ->
              if s.Trace.name = "pool.task" then
                Alcotest.(check bool) "pool.task has a parent" true (s.Trace.parent <> -1))
            spans))

(* ---- Prof ---- *)

let test_prof_aggregation () =
  with_tracing (fun () ->
      ignore
        (Trace.in_trace ~trace_id:"p" "request" (fun () ->
             Pass.Pipeline.run Pass.default_ctx
               (Option.get (Registry.find "lcm-edge")).Registry.pipeline (diamond ())));
      let spans = Trace.drain () in
      let prof = Prof.create () in
      Prof.add prof spans;
      let rows = Prof.rows prof in
      let find n = List.find_opt (fun (r : Prof.row) -> r.Prof.name = n) rows in
      (match find "pass.lcm-edge" with
      | None -> Alcotest.fail "pass.lcm-edge row missing"
      | Some r ->
        Alcotest.(check int) "count" 1 r.Prof.count;
        Alcotest.(check bool) "sweeps recorded from attrs" true (r.Prof.sweeps > 0);
        Alcotest.(check bool) "visits recorded from attrs" true (r.Prof.visits > 0);
        Alcotest.(check bool) "self <= total" true (r.Prof.self_s <= r.Prof.total_s +. 1e-9));
      (match find "request" with
      | None -> Alcotest.fail "request row missing"
      | Some r ->
        Alcotest.(check bool) "root total covers children" true
          (List.for_all (fun (c : Prof.row) -> c.Prof.total_s <= r.Prof.total_s +. 1e-9) rows));
      (* to_json shape: {"phases": {name: {...}}} *)
      match Json.member "phases" (Prof.to_json prof) with
      | Some (Json.Obj phases) ->
        Alcotest.(check bool) "json has the pass row" true (List.mem_assoc "pass.lcm-edge" phases)
      | _ -> Alcotest.fail "profile json missing phases object")

(* ---- Exporters ---- *)

let test_exporters_parse () =
  with_tracing (fun () ->
      Trace.in_trace ~trace_id:"exp" "root" (fun () -> Trace.span "child" (fun () -> ()));
      let spans = Trace.drain () in
      (match Json.parse (Trace.to_chrome spans) with
      | Json.List evs ->
        Alcotest.(check int) "one event per span" (List.length spans) (List.length evs);
        List.iter
          (fun e ->
            Alcotest.(check (option string)) "complete event" (Some "X")
              (Option.bind (Json.member "ph" e) Json.to_string_opt);
            let args = Option.value (Json.member "args" e) ~default:Json.Null in
            Alcotest.(check (option string)) "trace id in args" (Some "exp")
              (Option.bind (Json.member "trace_id" args) Json.to_string_opt))
          evs
      | _ -> Alcotest.fail "chrome export is not a JSON array");
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' (Trace.to_jsonl spans))
      in
      Alcotest.(check int) "one line per span" (List.length spans) (List.length lines);
      List.iter
        (fun l ->
          match Json.parse l with
          | Json.Obj _ -> ()
          | _ -> Alcotest.fail "jsonl line is not an object")
        lines)

(* ---- Pass / Pipeline API ---- *)

let test_pass_pipeline () =
  let tag name = Pass.v name (fun _ g -> (g, Pass.report ~notes:[ ("ran", name) ] ())) in
  let pl = Pass.Pipeline.v "combo" [ tag "first"; tag "second" ] in
  let pl = Pass.Pipeline.append pl [ tag "third" ] in
  let g = diamond () in
  let g', reports = Pass.Pipeline.run Pass.default_ctx pl g in
  Alcotest.(check string) "graph threaded through" (Cfg.to_string g) (Cfg.to_string g');
  Alcotest.(check (list string)) "reports in pass order" [ "first"; "second"; "third" ]
    (List.map fst reports);
  List.iter
    (fun (name, (r : Pass.report)) ->
      Alcotest.(check (option string)) "notes survive" (Some name) (List.assoc_opt "ran" r.Pass.notes))
    reports

(* Porting the optimizers onto Pass must not have changed a single bit of
   output: every registry entry's pipeline run is compared against the
   direct (pre-Pass) API on several graphs. *)
let test_registry_bit_identity () =
  let module Lcm_edge = Lcm_core.Lcm_edge in
  let module Bcm_edge = Lcm_core.Bcm_edge in
  let module Lcm_node = Lcm_core.Lcm_node in
  let module Lcm_block = Lcm_core.Lcm_block in
  let module Lcse = Lcm_opt.Lcse in
  let module Cleanup = Lcm_opt.Cleanup in
  let module Strength_reduction = Lcm_opt.Strength_reduction in
  let module Gcse = Lcm_baselines.Gcse in
  let module Morel_renvoise = Lcm_baselines.Morel_renvoise in
  let module Licm = Lcm_baselines.Licm in
  let direct =
    [
      ("identity", Cfg.copy);
      ("lcse", fun g -> fst (Lcse.run g));
      ("gcse", fun g -> fst (Gcse.transform g));
      ("licm", fun g -> fst (Licm.transform g));
      ("strength-reduction", fun g -> fst (Strength_reduction.run g));
      ("ssa-dvnt", fun g -> fst (Lcm_ssa.Dvnt.pass g));
      ("morel-renvoise", fun g -> fst (Morel_renvoise.transform g));
      ("bcm-edge", fun g -> fst (Bcm_edge.transform g));
      ("lcm-edge", fun g -> fst (Lcm_edge.transform g));
      ("lcm-block", fun g -> fst (Lcm_block.transform g));
      ("bcm-node", fun g -> fst (Lcm_node.transform Lcm_node.Bcm g));
      ("alcm-node", fun g -> fst (Lcm_node.transform Lcm_node.Alcm g));
      ("lcm-node", fun g -> fst (Lcm_node.transform Lcm_node.Lcm g));
      ("lcm-cleanup", fun g -> fst (Cleanup.run (fst (Lcm_edge.transform g))));
      ( "lcm-iterated",
        fun g ->
          let once h = fst (Cleanup.run (fst (Lcm_edge.transform h))) in
          once (once g) );
    ]
  in
  let graphs =
    diamond () :: List.map (fun seed -> corpus_graph ~blocks:40 ~seed) [ 1; 2; 3 ]
  in
  List.iter
    (fun (name, f) ->
      let entry = Option.get (Registry.find name) in
      List.iteri
        (fun i g ->
          let expected = Digest.to_hex (Digest.string (Cfg.to_string (f g))) in
          let got = Digest.to_hex (Digest.string (Cfg.to_string (entry.Registry.run g))) in
          Alcotest.(check string) (Printf.sprintf "%s bit-identical on graph %d" name i)
            expected got)
        graphs)
    direct;
  (* And no registry entry was forgotten by this list. *)
  List.iter
    (fun (e : Registry.entry) ->
      Alcotest.(check bool) (e.Registry.name ^ " covered") true
        (List.mem_assoc e.Registry.name direct))
    Registry.all

(* ---- Stats: snapshot schema and typed handles ---- *)

let test_snapshot_schema () =
  let t = Stats.create () in
  Stats.incr ~by:4 t "a";
  Stats.observe_ms t "lat" 3.0;
  let snap = Stats.snapshot t in
  Alcotest.(check (option int)) "snapshot carries schema 2" (Some Stats.snapshot_schema)
    (Option.bind (Json.member "schema" snap) Json.to_int_opt);
  (* v2 roundtrip. *)
  let b = Stats.create () in
  Stats.merge_snapshot b snap;
  Alcotest.(check int) "v2 counters merge" 4 (Stats.counter_value b "a");
  Alcotest.(check bool) "v2 histograms merge" true (Stats.quantile_ms b "lat" 0.5 <> None);
  (* v1: no schema field at all — the pre-upgrade on-disk format. *)
  Stats.merge_snapshot b (Json.Obj [ ("counters", Json.Obj [ ("a", Json.Int 2) ]) ]);
  Alcotest.(check int) "v1 accepted additively" 6 (Stats.counter_value b "a");
  (* A snapshot from the future is skipped whole, not half-merged. *)
  Stats.merge_snapshot b
    (Json.Obj [ ("schema", Json.Int 3); ("counters", Json.Obj [ ("a", Json.Int 100) ]) ]);
  Alcotest.(check int) "newer schema skipped" 6 (Stats.counter_value b "a")

let test_typed_handles () =
  let t = Stats.create () in
  let c = Stats.counter t "reqs" in
  Stats.bump c;
  Stats.bump ~by:2 c;
  Alcotest.(check int) "bump accumulates" 3 (Stats.value c);
  Alcotest.(check int) "same cell as the raw view" 3 (Stats.counter_value t "reqs");
  Alcotest.(check string) "name retained" "reqs" (Stats.counter_name c);
  let h = Stats.histo t "lat" in
  Stats.observe h 5.0;
  Alcotest.(check bool) "observation lands" true (Stats.quantile_ms t "lat" 0.5 <> None);
  Alcotest.(check string) "histo name retained" "lat" (Stats.histo_name h);
  (* Handles hold the name, not the cell: they survive reset. *)
  Stats.reset t;
  Alcotest.(check int) "reset zeroes" 0 (Stats.value c);
  Stats.bump c;
  Alcotest.(check int) "handle valid after reset" 1 (Stats.value c)

(* The serving layer must only touch metrics through Smetrics' typed
   handles — a raw string key at a call site is exactly the drift the
   handles exist to prevent.  Enforced by scanning the sources (dune
   copies them next to the test binary's tree). *)
let test_no_raw_metric_keys () =
  let rec find_root dir depth =
    if depth > 6 then None
    else if Sys.file_exists (Filename.concat dir "lib/server/engine.ml") then Some dir
    else find_root (Filename.concat dir "..") (depth + 1)
  in
  match find_root (Sys.getcwd ()) 0 with
  | None -> Alcotest.fail "cannot locate lib/server sources from the test cwd"
  | Some root ->
    List.iter
      (fun file ->
        let path = Filename.concat root ("lib/server/" ^ file) in
        let src = In_channel.with_open_text path In_channel.input_all in
        let contains needle =
          let n = String.length needle and m = String.length src in
          let rec go i = i + n <= m && (String.sub src i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) (file ^ " has no raw Stats.incr") false (contains "Stats.incr");
        Alcotest.(check bool)
          (file ^ " has no raw Stats.observe_ms")
          false (contains "Stats.observe_ms"))
      [ "engine.ml"; "daemon.ml"; "supervisor.ml" ]

let suite =
  [
    Alcotest.test_case "disabled tracing is pass-through" `Quick test_disabled_is_passthrough;
    Alcotest.test_case "span nesting and context" `Quick test_span_nesting;
    Alcotest.test_case "error spans keep the attribute" `Quick test_span_error_attr;
    Alcotest.test_case "take is per-trace" `Quick test_take_is_per_trace;
    Alcotest.test_case "minted trace ids" `Quick test_mint_ids_unique;
    Alcotest.test_case "span tree across 4 domains" `Quick test_span_tree_parallel;
    Alcotest.test_case "profile aggregation" `Quick test_prof_aggregation;
    Alcotest.test_case "exporters parse" `Quick test_exporters_parse;
    Alcotest.test_case "pass pipeline combinator" `Quick test_pass_pipeline;
    Alcotest.test_case "pass-ported optimizers are bit-identical" `Quick test_registry_bit_identity;
    Alcotest.test_case "stats snapshot schema v1/v2" `Quick test_snapshot_schema;
    Alcotest.test_case "typed metric handles" `Quick test_typed_handles;
    Alcotest.test_case "no raw metric keys in serving code" `Quick test_no_raw_metric_keys;
  ]
