(* The interpreter and the decision-trace engine. *)

module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Interp = Lcm_eval.Interp
module Trace = Lcm_eval.Trace

let lower src = Lower.parse_and_lower_func src
let pool_of = Cfg.candidate_pool

let run ?env src =
  let g = lower src in
  Interp.run ~pool:(pool_of g) ~env:(Option.value ~default:[] env) g

let ret o = Option.get o.Interp.return_value

let test_arithmetic () =
  Alcotest.(check int) "add" 7 (ret (run "function f() { return 3 + 4; }"));
  Alcotest.(check int) "precedence" 14 (ret (run "function f() { return 2 + 3 * 4; }"));
  Alcotest.(check int) "sub" (-1) (ret (run "function f() { return 3 - 4; }"));
  Alcotest.(check int) "div" 3 (ret (run "function f() { return 10 / 3; }"));
  Alcotest.(check int) "div by zero is 0" 0 (ret (run "function f() { return 10 / 0; }"));
  Alcotest.(check int) "mod by zero is 0" 0 (ret (run "function f() { return 10 % 0; }"));
  Alcotest.(check int) "neg" (-5) (ret (run "function f() { return -5; }"));
  Alcotest.(check int) "not" 1 (ret (run "function f() { return !0; }"));
  Alcotest.(check int) "comparison" 1 (ret (run "function f() { return 2 < 3; }"))

let test_control_flow () =
  Alcotest.(check int) "if true" 1 (ret (run "function f() { if (1 > 0) { return 1; } return 2; }"));
  Alcotest.(check int) "if false" 2 (ret (run "function f() { if (0 > 1) { return 1; } return 2; }"));
  Alcotest.(check int) "while sum" 10
    (ret (run "function f() { s = 0; i = 0; while (i < 5) { s = s + i; i = i + 1; } return s; }"));
  Alcotest.(check int) "do while runs once" 1
    (ret (run "function f() { s = 0; do { s = s + 1; } while (0 > 1); return s; }"))

let test_env_binding () =
  let o = run ~env:[ ("a", 3); ("b", 4) ] "function f(a, b) { return a * b; }" in
  Alcotest.(check int) "12" 12 (ret o);
  Alcotest.(check (list string)) "no undefined reads" [] o.Interp.undefined_reads

let test_undefined_reads () =
  let o = run "function f() { return x + 1; }" in
  Alcotest.(check (list string)) "x undefined" [ "x" ] o.Interp.undefined_reads;
  Alcotest.(check int) "defaults to 0" 1 (ret o)

let test_prints () =
  let o = run "function f() { print 1; print 2 + 3; return 0; }" in
  Alcotest.(check (list int)) "prints in order" [ 1; 5 ] o.Interp.prints

let test_eval_counts () =
  let g = lower "function f(a, b) { x = a + b; y = a + b; return 0; }" in
  let pool = pool_of g in
  let o = Interp.run ~pool ~env:[ ("a", 1); ("b", 2) ] g in
  let idx = Option.get (Lcm_ir.Expr_pool.index pool (Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b"))) in
  Alcotest.(check int) "two evals" 2 o.Interp.eval_counts.(idx);
  Alcotest.(check bool) "total includes them" true (Interp.total_evals o >= 2)

let test_fuel () =
  let g = lower "function f() { i = 0; while (i < 1) { i = i * 0; } return i; }" in
  let o = Interp.run ~fuel:100 ~pool:(pool_of g) ~env:[] g in
  Alcotest.(check bool) "did not terminate" false o.Interp.terminated

let test_loop_iterations () =
  let g = lower "function f(n) { s = 0; i = 0; while (i < n) { s = s + 2; i = i + 1; } return s; }" in
  let o = Interp.run ~pool:(pool_of g) ~env:[ ("n", 100) ] g in
  Alcotest.(check int) "200" 200 (ret o);
  Alcotest.(check bool) "terminated" true o.Interp.terminated

(* ---- Trace engine ---- *)

let diamond_graph () = lower "function f(a, b, p) { if (p > 0) { x = a + b; } y = a + b; return y; }"

let test_trace_enumerate () =
  let g = diamond_graph () in
  let seqs = Trace.enumerate g ~max_decisions:4 in
  (* one branch: exactly two complete paths *)
  Alcotest.(check int) "two paths" 2 (List.length seqs)

let test_trace_replay_counts () =
  let g = diamond_graph () in
  let pool = pool_of g in
  let idx = Option.get (Lcm_ir.Expr_pool.index pool (Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b"))) in
  let taken = Trace.replay ~pool g [ true ] in
  let skipped = Trace.replay ~pool g [ false ] in
  Alcotest.(check bool) "both complete" true (taken.Trace.completed && skipped.Trace.completed);
  Alcotest.(check int) "then-path: 2 evals of a+b" 2 taken.Trace.eval_counts.(idx);
  Alcotest.(check int) "else-path: 1 eval of a+b" 1 skipped.Trace.eval_counts.(idx)

let test_trace_incomplete () =
  let g = diamond_graph () in
  let r = Trace.replay ~pool:(pool_of g) g [] in
  Alcotest.(check bool) "needs a decision" false r.Trace.completed

let test_trace_loop_bounded () =
  let g = lower "function f(p) { i = 0; while (p > 0) { i = i + 1; } return i; }" in
  let seqs = Trace.enumerate g ~max_decisions:5 in
  (* Loop taken k times then exited: k decisions true then false; sequences
     of length 1..5 with all-but-last true, plus... each complete sequence
     ends with a false decision. *)
  Alcotest.(check bool) "several paths" true (List.length seqs >= 3);
  List.iter
    (fun seq ->
      match List.rev seq with
      | false :: _ -> ()
      | _ -> Alcotest.fail "complete loop paths must end by exiting")
    seqs

let test_counts_dominate () =
  Alcotest.(check bool) "dominates" true (Trace.counts_dominate [| 1; 2 |] [| 1; 3 |]);
  Alcotest.(check bool) "not dominates" false (Trace.counts_dominate [| 2; 2 |] [| 1; 3 |]);
  Alcotest.(check int) "total" 3 (Trace.total [| 1; 2 |])

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "environment binding" `Quick test_env_binding;
    Alcotest.test_case "undefined reads recorded" `Quick test_undefined_reads;
    Alcotest.test_case "prints" `Quick test_prints;
    Alcotest.test_case "eval counts" `Quick test_eval_counts;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel;
    Alcotest.test_case "loop iterations" `Quick test_loop_iterations;
    Alcotest.test_case "trace: enumerate diamond" `Quick test_trace_enumerate;
    Alcotest.test_case "trace: replay counts" `Quick test_trace_replay_counts;
    Alcotest.test_case "trace: incomplete path" `Quick test_trace_incomplete;
    Alcotest.test_case "trace: loops bounded" `Quick test_trace_loop_bounded;
    Alcotest.test_case "counts dominate" `Quick test_counts_dominate;
  ]
