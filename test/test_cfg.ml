(* Graph structure: blocks, edges, mutation, splitting, merging. *)

module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Validate = Lcm_cfg.Validate
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

let assign v n = Instr.Assign (v, Expr.Atom (Expr.Const n))

(* entry → a → (b | c) → d → exit, with a branch at a. *)
let make_diamond () =
  let g = Cfg.create ~name:"diamond" () in
  let a = Cfg.add_block g ~instrs:[ assign "x" 1 ] ~term:Cfg.Halt in
  let b = Cfg.add_block g ~instrs:[ assign "y" 2 ] ~term:Cfg.Halt in
  let c = Cfg.add_block g ~instrs:[ assign "y" 3 ] ~term:Cfg.Halt in
  let d = Cfg.add_block g ~instrs:[ assign "z" 4 ] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Cfg.set_term g a (Cfg.Branch (Expr.Var "x", b, c));
  Cfg.set_term g b (Cfg.Goto d);
  Cfg.set_term g c (Cfg.Goto d);
  Cfg.set_term g d (Cfg.Goto (Cfg.exit_label g));
  (g, a, b, c, d)

let test_create () =
  let g = Cfg.create () in
  Alcotest.(check int) "two blocks" 2 (Cfg.num_blocks g);
  Alcotest.(check bool) "entry first" true (List.hd (Cfg.labels g) = Cfg.entry g);
  Alcotest.(check (list int)) "entry goes to exit" [ Cfg.exit_label g ] (Cfg.successors g (Cfg.entry g));
  Alcotest.(check (list string)) "valid" [] (Validate.check g)

let test_diamond_structure () =
  let g, a, b, c, d = make_diamond () in
  Alcotest.(check int) "blocks" 6 (Cfg.num_blocks g);
  Alcotest.(check (list int)) "succ a" [ b; c ] (Cfg.successors g a);
  Alcotest.(check (list int)) "preds d" [ b; c ] (List.sort compare (Cfg.predecessors g d));
  Alcotest.(check int) "edges" 6 (List.length (Cfg.edges g));
  Alcotest.(check (list string)) "valid" [] (Validate.check g)

let test_preds_cache_invalidation () =
  let g, _a, b, c, d = make_diamond () in
  ignore (Cfg.predecessors g d);
  (* Mutate: retarget b to exit; preds of d must shrink. *)
  Cfg.set_term g b (Cfg.Goto (Cfg.exit_label g));
  Alcotest.(check (list int)) "preds updated" [ c ] (Cfg.predecessors g d)

let test_branch_same_target_dedup () =
  let g = Cfg.create () in
  let a = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Cfg.set_term g a (Cfg.Branch (Expr.Var "x", Cfg.exit_label g, Cfg.exit_label g));
  Alcotest.(check int) "one successor" 1 (List.length (Cfg.successors g a))

let test_split_edge () =
  let g, a, b, _c, _d = make_diamond () in
  let before_edges = List.length (Cfg.edges g) in
  let fresh = Cfg.split_edge g a b in
  Alcotest.(check (list int)) "fresh goes to b" [ b ] (Cfg.successors g fresh);
  Alcotest.(check bool) "a now targets fresh" true (List.mem fresh (Cfg.successors g a));
  Alcotest.(check bool) "a no longer targets b" false (List.mem b (Cfg.successors g a));
  Alcotest.(check int) "one more edge" (before_edges + 1) (List.length (Cfg.edges g));
  Alcotest.(check (list string)) "valid" [] (Validate.check g)

let test_split_missing_edge () =
  let g, _a, b, c, _d = make_diamond () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Cfg.split_edge g b c);
       false
     with Invalid_argument _ -> true)

let test_critical_edges () =
  (* a has two successors; d has two predecessors; but no edge a->d, so no
     critical edge in the plain diamond. *)
  let g, a, b, _c, d = make_diamond () in
  Alcotest.(check bool) "b->d not critical" false (Cfg.is_critical_edge g (b, d));
  (* Retarget a's false arm directly to d: now (a,d) is critical. *)
  Cfg.set_term g a (Cfg.Branch (Expr.Var "x", b, d));
  Alcotest.(check bool) "a->d critical" true (Cfg.is_critical_edge g (a, d))

let test_remove_unreachable () =
  let g, a, b, _c, d = make_diamond () in
  (* Cut the branch: goto b only; c becomes unreachable. *)
  Cfg.set_term g a (Cfg.Goto b);
  Cfg.remove_unreachable g;
  Alcotest.(check int) "blocks" 5 (Cfg.num_blocks g);
  Alcotest.(check (list int)) "preds d" [ b ] (Cfg.predecessors g d);
  Alcotest.(check (list string)) "valid" [] (Validate.check g)

let test_exit_survives_removal () =
  let g = Cfg.create () in
  let a = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Cfg.set_term g a (Cfg.Goto a);
  (* infinite loop: exit unreachable *)
  Cfg.remove_unreachable g;
  Alcotest.(check bool) "exit kept" true (Cfg.mem g (Cfg.exit_label g))

let test_merge_straight_pairs () =
  let g = Cfg.create () in
  let a = Cfg.add_block g ~instrs:[ assign "x" 1 ] ~term:Cfg.Halt in
  let b = Cfg.add_block g ~instrs:[ assign "y" 2 ] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Cfg.set_term g a (Cfg.Goto b);
  Cfg.set_term g b (Cfg.Goto (Cfg.exit_label g));
  Cfg.merge_straight_pairs g;
  (* The whole chain collapses into the entry block (the exit is never
     absorbed). *)
  Alcotest.(check int) "entry absorbed both" 2 (List.length (Cfg.instrs g (Cfg.entry g)));
  Alcotest.(check bool) "a gone" false (Cfg.mem g a);
  Alcotest.(check bool) "b gone" false (Cfg.mem g b);
  Alcotest.(check int) "two blocks left" 2 (Cfg.num_blocks g);
  Alcotest.(check (list string)) "valid" [] (Validate.check g)

let test_copy_independent () =
  let g, a, _b, _c, _d = make_diamond () in
  let g' = Cfg.copy g in
  Cfg.set_instrs g' a [];
  Alcotest.(check int) "original untouched" 1 (List.length (Cfg.instrs g a));
  Alcotest.(check int) "copy changed" 0 (List.length (Cfg.instrs g' a))

let test_all_vars_and_counts () =
  let g, _, _, _, _ = make_diamond () in
  Alcotest.(check (list string)) "vars" [ "x"; "y"; "z" ] (Cfg.all_vars g);
  Alcotest.(check int) "instrs" 4 (Cfg.num_instrs g);
  Alcotest.(check int) "no candidates" 0 (Cfg.num_candidate_occurrences g)

let test_validate_catches_bad_halt () =
  let g = Cfg.create () in
  let a = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Alcotest.(check bool) "non-exit halt flagged" true
    (List.exists (fun s -> String.length s > 0) (Validate.check g))

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "diamond structure" `Quick test_diamond_structure;
    Alcotest.test_case "predecessor cache invalidation" `Quick test_preds_cache_invalidation;
    Alcotest.test_case "branch with equal targets" `Quick test_branch_same_target_dedup;
    Alcotest.test_case "split edge" `Quick test_split_edge;
    Alcotest.test_case "split missing edge raises" `Quick test_split_missing_edge;
    Alcotest.test_case "critical edges" `Quick test_critical_edges;
    Alcotest.test_case "remove unreachable" `Quick test_remove_unreachable;
    Alcotest.test_case "exit survives removal" `Quick test_exit_survives_removal;
    Alcotest.test_case "merge straight pairs" `Quick test_merge_straight_pairs;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "all_vars and counts" `Quick test_all_vars_and_counts;
    Alcotest.test_case "validate catches stray halt" `Quick test_validate_catches_bad_halt;
  ]
