(* The generators must be deterministic and respect their ranges. *)

module Prng = Lcm_support.Prng

let test_determinism () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_different_seeds () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  Alcotest.(check bool) "streams differ" false (Prng.next a = Prng.next b)

let test_int_range () =
  let rng = Prng.of_int 7 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_int_in_range () =
  let rng = Prng.of_int 8 in
  for _ = 1 to 1000 do
    let x = Prng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_int_bounds_exhaustive () =
  (* Over many draws from a small range, every value appears. *)
  let rng = Prng.of_int 9 in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Prng.int rng 4) <- true
  done;
  Array.iteri (fun i b -> Alcotest.(check bool) (Printf.sprintf "value %d drawn" i) true b) seen

let test_invalid () =
  let rng = Prng.of_int 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Prng.int_in: empty range") (fun () ->
      ignore (Prng.int_in rng 3 2));
  Alcotest.check_raises "empty choose" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose rng [||]))

let test_split_independent () =
  let a = Prng.of_int 5 in
  let b = Prng.split a in
  (* After splitting, both can be drawn from without crashing and give
     deterministic values across runs. *)
  let xs = List.init 5 (fun _ -> Prng.int a 100) in
  let ys = List.init 5 (fun _ -> Prng.int b 100) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_shuffle_permutes () =
  let rng = Prng.of_int 11 in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 Fun.id) sorted

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int_in range" `Quick test_int_in_range;
    Alcotest.test_case "small range covered" `Quick test_int_bounds_exhaustive;
    Alcotest.test_case "invalid arguments raise" `Quick test_invalid;
    Alcotest.test_case "split" `Quick test_split_independent;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
  ]
